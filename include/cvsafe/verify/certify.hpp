#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cvsafe/comm/channel.hpp"
#include "cvsafe/scenario/intersection.hpp"
#include "cvsafe/scenario/lane_change.hpp"
#include "cvsafe/scenario/left_turn.hpp"
#include "cvsafe/util/rng.hpp"

/// \file certify.hpp
/// Offline certification of the framework's safety assumptions.
///
/// Section III-E's guarantee rests on properties that can be checked
/// exhaustively offline — the paper stresses that "it does not require
/// extra resources for safety verification during runtime". This module
/// packages those checks as library routines so a deployment with custom
/// geometry / actuation limits can certify its own configuration:
///
///  1. Eq. 4      — one emergency step from the boundary safe set never
///                  lands in the unsafe set (dense grid sweep);
///  2. invariance — the emergency planner preserves conflict
///                  resolvability for committed states (randomized);
///  3. soundness  — the conservative passing window (Eq. 7) brackets the
///                  real passing interval along random feasible
///                  trajectories (Monte-Carlo);
///  4. monotonicity — the information filter's window bounds only
///                  tighten in absolute time as information arrives,
///                  which the inductive safety argument relies on.

namespace cvsafe::verify {

/// One violating sample of a certification sweep.
struct Counterexample {
  double t = 0.0;
  double p0 = 0.0;
  double v0 = 0.0;
  util::Interval tau1;
  std::string detail;
};

/// Outcome of a certification run.
struct Certificate {
  std::string property;              ///< which property was checked
  std::size_t checked = 0;           ///< samples examined
  std::vector<Counterexample> counterexamples;  ///< empty iff certified

  bool holds() const { return counterexamples.empty(); }
};

/// Grid resolutions for the Eq. 4 sweep.
struct GridSpec {
  double p_step = 0.05;   ///< position grid step [m]
  double v_step = 0.25;   ///< velocity grid step [m/s]
  double tau_step = 0.5;  ///< window-endpoint grid step [s]
  double tau_max = 12.0;  ///< latest window endpoint examined [s]
  std::size_t max_counterexamples = 16;
};

/// Property 1: Eq. 4 on the slack-band branch of X_b — from every grid
/// state in the band (with every grid window that triggers the monitor),
/// one step of kappa_e stays outside X_u.
Certificate certify_emergency_eq4(const scenario::LeftTurnScenario& scenario,
                                  const GridSpec& grid = {});

/// Property 2: kappa_e preserves resolvability for committed states:
/// from any resolvable committed state, the state after one emergency
/// step is still resolvable (window held fixed; randomized sampling).
Certificate certify_resolvability_invariance(
    const scenario::LeftTurnScenario& scenario, std::size_t samples,
    util::Rng& rng);

/// Property 3: Monte-Carlo soundness of the conservative window — along
/// random feasible oncoming trajectories, the window computed from any
/// pre-entry exact state brackets the true passing interval.
Certificate certify_window_soundness(
    const scenario::LeftTurnScenario& scenario, std::size_t trajectories,
    util::Rng& rng);

/// Property 4: the information filter's conservative window, recomputed
/// every control step along a random episode (messages + noisy readings),
/// has a non-decreasing lower bound and non-increasing upper bound in
/// absolute time, up to the stated tolerance.
Certificate certify_filter_monotonicity(
    const scenario::LeftTurnScenario& scenario,
    const sensing::SensorConfig& sensor, const comm::CommConfig& comm,
    std::size_t episodes, util::Rng& rng, double tolerance = 1e-6);

/// Lane-change Eq. 4 analog: from every randomized boundary state of the
/// merge scenario (with exact leading-vehicle information), one emergency
/// step keeps the gap constraint satisfiable (never lands in the unsafe
/// set).
Certificate certify_lane_change_eq4(
    const scenario::LaneChangeScenario& scenario, std::size_t samples,
    util::Rng& rng);

/// Intersection kappa_e invariance: from every randomized resolvable
/// state of the two-zone crossing, one emergency step preserves
/// resolvability (windows held fixed).
Certificate certify_intersection_invariance(
    const scenario::IntersectionScenario& scenario, std::size_t samples,
    util::Rng& rng);

}  // namespace cvsafe::verify
