#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cvsafe/nn/mlp.hpp"
#include "cvsafe/planners/nn_planner.hpp"
#include "cvsafe/scenario/left_turn.hpp"
#include "cvsafe/util/interval.hpp"

/// \file sound.hpp
/// Sound (proof-producing) certification of the left-turn safety theorem
/// and of the trained NN planner — the static-analysis counterpart of the
/// sampling-based checks in certify.hpp.
///
/// Two theorems are established by branch-and-bound over boxes, with every
/// numeric bound computed in outward-rounded interval arithmetic
/// (util/rounded_interval.hpp), so floating point can widen but never
/// falsify a certified inequality:
///
/// THEOREM A (Eq. 4, slack band, window-free form). Parameterize the
/// pre-zone band by (v0, s) with s = slack of Eq. 5 — so every analyzed
/// state satisfies s >= 0 *by construction* and p0 = p_f - d_b(v0) - s.
/// For every (v0, s) in [0, v_max] x [0, s_max] the ideal emergency
/// command a* = max(a_min, -v0^2 / (2 gap)) keeps the one-step successor's
/// slack non-negative. Since membership in X_u (Eq. 6) requires *negative*
/// slack, the successor is outside X_u for EVERY oncoming window tau_1 —
/// which is why the certified statement needs no window dimensions: it is
/// strictly stronger than Eq. 4 restricted to the band.
///
/// Per-leaf discharge rules:
///  * kMargin — the numeric rule. The no-stop successor's slack is
///    evaluated with directed rounding over the leaf box and its lower
///    bound is >= 0. This is a machine-checked strict inequality; the
///    independent checker recomputes it from the leaf box alone.
///  * kLemma — the boundary rule. On the manifold s = 0 Eq. 4 is *tight*
///    (the successor's slack is exactly 0 in real arithmetic), so no
///    outward-rounded evaluation can certify a strict margin there; leaves
///    whose widths reach min_width fall back to the exact-braking
///    invariance lemma: along a constant-a trajectory the quantity
///    gap(t) - v(t)^2/(2|a|) is conserved, and |a*| >= v0^2/(2 gap) by
///    construction, so slack stays >= 0 (docs/CERTIFICATION.md carries the
///    two-line proof). Stopping successors (the vehicle halts within the
///    step) are covered by the same lemma on every leaf: they halt at or
///    before the front line.
///
/// THEOREM B (certified kappa_n output bounds, ShieldNN-style). Over an
/// encoded input domain covering the aggressive-window planner view
/// (positions up to the back line, all speeds, all admissible relative
/// windows — a box superset of X_u,aggr's image under the input
/// encoding), the interval MLP pass (nn/interval_mlp.hpp) bounds the
/// network output on every leaf; bisection continues until the leaf
/// enclosure fits the assertion range and the target width. The union of
/// leaf enclosures is a certified global hull for the raw (pre-clamp)
/// planner command; core/certified_bounds.hpp consumes it at runtime.
///
/// Determinism. The search runs breadth-first: each level's boxes are
/// expanded in parallel into index-addressed slots, so the leaf list —
/// and therefore the certificate artifact — is byte-identical across
/// runs and thread counts. All certified arithmetic lives in translation
/// units compiled with -ffp-contract=off and avoids libm transcendentals
/// (the tanh enclosure is built on fast_tanh), so the artifact is also
/// stable across toolchains.

namespace cvsafe::obs {
class MetricsRegistry;
}  // namespace cvsafe::obs

namespace cvsafe::verify {

/// Branch-and-bound tuning. Defaults prove the paper configuration in
/// well under a second for Eq. 4 and a few seconds for the NN bounds.
struct SoundBnbOptions {
  std::size_t max_depth = 22;       ///< hard bisection depth cap
  double min_width = 0x1p-8;        ///< Eq. 4: scaled width floor before the
                                    ///< boundary lemma may discharge a leaf
  double nn_target_width = 28.0;    ///< Theorem B: stop refining a leaf once
                                    ///< its output enclosure is this tight
  double nn_min_box_width = 0x1p-3; ///< Theorem B: scaled box width floor
  util::Interval nn_assert{-32.0, 32.0};  ///< asserted raw-output range
  std::size_t threads = 0;        ///< worker threads (0 = hardware)
  obs::MetricsRegistry* metrics = nullptr;  ///< optional prover counters
};

/// How one Eq. 4 leaf was discharged.
enum class Eq4Rule : std::uint8_t {
  kMargin = 0,  ///< directed-rounding numeric margin (strict)
  kLemma = 1,   ///< exact-braking invariance lemma (boundary / stopping)
};

/// One leaf of the Theorem A proof tree.
struct Eq4LeafProof {
  std::string path;        ///< bisection path from the root ('0'/'1')
  util::Interval v;        ///< ego speed box [m/s]
  util::Interval s;        ///< slack box [m]
  Eq4Rule rule = Eq4Rule::kMargin;
  double slack_next_lb = 0.0;  ///< certified lower bound (kMargin only)
};

/// Theorem A outcome.
struct Eq4SoundResult {
  bool proved = false;
  util::Interval v_domain;  ///< certified speed range
  util::Interval s_domain;  ///< certified slack range
  std::vector<Eq4LeafProof> leaves;
  std::size_t margin_leaves = 0;  ///< leaves discharged numerically
  std::size_t lemma_leaves = 0;   ///< boundary leaves
  std::size_t max_depth_reached = 0;
};

/// One leaf of the Theorem B proof tree.
struct NnLeafProof {
  std::string path;
  std::array<util::Interval, 4> box;  ///< encoded-input sub-box
  util::Interval out;                 ///< certified output enclosure
};

/// Theorem B outcome.
struct NnBoundsResult {
  bool proved = false;                     ///< every leaf inside the assert
  util::Interval assert_range;
  util::Interval hull;                     ///< union of leaf enclosures
  std::array<util::Interval, 4> domain;    ///< encoded root box
  std::vector<NnLeafProof> leaves;
  std::size_t max_depth_reached = 0;
};

/// Raw-coordinate input domain for Theorem B; encoded through the
/// planner's InputEncoding (directed rounding) into the root box.
struct NnInputDomain {
  util::Interval p0;     ///< ego position [m]
  util::Interval v0;     ///< ego speed [m/s]
  util::Interval w_rel;  ///< relative window endpoints [s] (both share it)

  /// The planner view the monitor certifies: positions from the start
  /// line to the back line, the full actuation speed range, and every
  /// admissible clamped relative window — a box superset of the encoded
  /// image of X_u,aggr.
  static NnInputDomain planner_view(const scenario::LeftTurnScenario& scn,
                                    const planners::InputEncoding& enc);
};

/// Proves Theorem A for \p scenario (requires ego v_min == 0, the paper's
/// left-turn actuation floor — the band parameterization leans on it).
Eq4SoundResult certify_eq4_sound(const scenario::LeftTurnScenario& scenario,
                                 const SoundBnbOptions& options = {});

/// Proves Theorem B for \p net over \p domain.
NnBoundsResult certify_nn_bounds_sound(const nn::Mlp& net,
                                       const planners::InputEncoding& encoding,
                                       const NnInputDomain& domain,
                                       const SoundBnbOptions& options = {});

/// The full machine-checkable artifact.
struct SoundCertificate {
  Eq4SoundResult eq4;
  NnBoundsResult nn;
  std::string net_hash;     ///< FNV-1a of the serialized network
  std::string config_hash;  ///< FNV-1a of the scenario/options fields

  bool proved() const { return eq4.proved && nn.proved; }
};

/// Runs both theorems and assembles the certificate.
SoundCertificate certify_sound(const scenario::LeftTurnScenario& scenario,
                               const nn::Mlp& net,
                               const planners::InputEncoding& encoding,
                               const SoundBnbOptions& options = {});

/// Deterministic JSON rendering (hexfloat doubles, fixed key order, no
/// locale dependence); scripts/check_certificate.py consumes this. The
/// network weights are embedded (hexfloat) so the checker can re-prove
/// Theorem B without access to the model cache.
std::string certificate_json(const SoundCertificate& cert,
                             const scenario::LeftTurnScenario& scenario,
                             const nn::Mlp& net,
                             const planners::InputEncoding& encoding,
                             const SoundBnbOptions& options);

/// FNV-1a 64-bit over a byte string, rendered as 16 hex digits (the
/// certificate's self-hash and the network fingerprint use it).
std::string fnv1a_hex(const std::string& bytes);

}  // namespace cvsafe::verify
