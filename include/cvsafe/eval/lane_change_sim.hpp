#pragma once

#include "cvsafe/sim/lane_change.hpp"

/// \file lane_change_sim.hpp
/// Compatibility aliases: the lane-change closed loop now runs on the
/// generic engine in cvsafe/sim/lane_change.hpp.

namespace cvsafe::eval {

using LaneChangeSimConfig = sim::LaneChangeSimConfig;
using LaneChangePlannerConfig = sim::LaneChangePlannerConfig;
using LaneChangeSimResult = sim::RunResult;
using LaneChangeBatchStats = sim::BatchStats;

using sim::run_lane_change_simulation;
using sim::run_lane_change_batch;

}  // namespace cvsafe::eval
