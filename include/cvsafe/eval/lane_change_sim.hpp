#pragma once

#include <cstdint>
#include <memory>

#include "cvsafe/comm/channel.hpp"
#include "cvsafe/scenario/lane_change.hpp"
#include "cvsafe/sensing/sensor.hpp"
#include "cvsafe/vehicle/accel_profile.hpp"

/// \file lane_change_sim.hpp
/// Closed-loop evaluation harness for the lane-change / merge scenario —
/// the same experiment machinery as the left-turn case study, applied to
/// the second instantiation of the framework. Quantifies that the
/// compound planner's guarantee and efficiency story generalize beyond
/// the paper's case study.

namespace cvsafe::eval {

/// Configuration of one lane-change simulation cell.
struct LaneChangeSimConfig {
  scenario::LaneChangeGeometry geometry;
  vehicle::VehicleLimits ego_limits{0.0, 18.0, -6.0, 3.0};
  vehicle::VehicleLimits c1_limits{3.0, 15.0, -3.0, 2.0};
  double dt_c = 0.05;
  double horizon = 30.0;
  double ego_v0 = 12.0;
  comm::CommConfig comm = comm::CommConfig::no_disturbance();
  sensing::SensorConfig sensor = sensing::SensorConfig::uniform(0.8);

  /// Oncoming... leading-vehicle workload: initial headway ahead of the
  /// merge point and initial speed ranges.
  double c1_gap_min = 0.0;
  double c1_gap_max = 25.0;
  double c1_v_min = 4.0;
  double c1_v_max = 10.0;

  std::shared_ptr<const scenario::LaneChangeScenario> make_scenario() const;
};

/// Planner selection for the lane-change harness.
struct LaneChangePlannerConfig {
  /// Target-speed tracking gain of the (reckless) merging planner.
  double cruise_speed = 16.0;
  bool use_compound = true;          ///< monitor + emergency wrap
  bool use_info_filter = true;       ///< ultimate estimators for the monitor
};

/// Episode outcome.
struct LaneChangeSimResult {
  bool violated = false;   ///< gap constraint violated while merged
  bool reached = false;
  double reach_time = 0.0;
  double eta = 0.0;
  std::size_t steps = 0;
  std::size_t emergency_steps = 0;
};

/// Runs one lane-change episode.
LaneChangeSimResult run_lane_change_simulation(
    const LaneChangeSimConfig& config,
    const LaneChangePlannerConfig& planner, std::uint64_t seed);

/// Aggregate over a batch (parallel, seed-paired).
struct LaneChangeBatchStats {
  std::size_t n = 0;
  std::size_t safe_count = 0;
  std::size_t reached_count = 0;
  std::size_t total_steps = 0;
  std::size_t emergency_steps = 0;
  double mean_eta = 0.0;
  double mean_reach_time = 0.0;

  double safe_rate() const {
    return n ? static_cast<double>(safe_count) / static_cast<double>(n) : 0.0;
  }
  double emergency_frequency() const {
    return total_steps ? static_cast<double>(emergency_steps) /
                             static_cast<double>(total_steps)
                       : 0.0;
  }
};

LaneChangeBatchStats run_lane_change_batch(
    const LaneChangeSimConfig& config,
    const LaneChangePlannerConfig& planner, std::size_t n,
    std::uint64_t base_seed = 1, std::size_t threads = 0);

}  // namespace cvsafe::eval
