#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cvsafe/eval/batch.hpp"
#include "cvsafe/planners/training.hpp"

/// \file experiments.hpp
/// Canned experiment definitions matching Section V:
///
///  * the three communication settings (no disturbance / messages delayed
///    with the p_drop sweep / messages lost with the sensor-noise sweep);
///  * the three planner variants per NN style (pure / basic / ultimate);
///  * batch aggregation across a sweep grid with seed pairing preserved,
///    which is how the 80,000-simulation table cells of the paper fold
///    the disturbance sweeps.

namespace cvsafe::eval {

/// The paper's three communication settings.
enum class CommSetting { kNoDisturbance, kDelayed, kLost };

/// "no disturbance" / "messages delayed" / "messages lost".
const char* comm_setting_name(CommSetting setting);

/// Message drop probabilities {0.05 j | j = 0..19} (delayed setting).
std::vector<double> drop_prob_grid();

/// Sensor uncertainties {1 + 0.2 j | j = 0..19} (lost setting).
std::vector<double> sensor_delta_grid();

/// The paper's message delay in the delayed setting [s].
inline constexpr double kPaperMessageDelay = 0.25;

/// Planner variants compared in Tables I and II.
enum class PlannerVariant { kPureNn, kBasic, kUltimate };

/// "pure NN" / "basic" / "ultimate".
const char* planner_variant_name(PlannerVariant variant);

/// Builds the blueprint of one (style, variant) planner for \p config.
/// Trains (or loads from cache) the style's network.
AgentBlueprint make_nn_blueprint(const SimConfig& config,
                                 planners::PlannerStyle style,
                                 PlannerVariant variant,
                                 const planners::TrainingOptions& train = {});

/// Applies one point of a communication setting to a base configuration:
/// no-disturbance ignores \p sweep_value; delayed uses it as p_drop;
/// lost uses it as the sensor uncertainty delta.
SimConfig apply_setting(SimConfig base, CommSetting setting,
                        double sweep_value);

/// Which batch machinery a table cell runs on. Both are byte-identical in
/// output (stats, eta order); kFleet keeps planning batches wide across
/// episode retirement and steals work between threads, so it is the
/// default for campaign-scale cells.
enum class BatchEngine {
  kFleet,     ///< pooled fleet engine (sim/fleet.hpp)
  kLockstep,  ///< PR-3 per-shard lockstep batching (run_left_turn_batch)
};

/// Runs a full table cell: a single batch for no-disturbance, or the
/// seed-paired aggregation of sub-batches across the setting's sweep grid
/// (total simulations ~ sims_total). Blueprint sensor configs are adjusted
/// per sweep point automatically.
BatchStats run_setting(const SimConfig& base, const AgentBlueprint& blueprint,
                       CommSetting setting, std::size_t sims_total,
                       std::uint64_t base_seed = 1, std::size_t threads = 0,
                       BatchEngine engine = BatchEngine::kFleet);

}  // namespace cvsafe::eval
