#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cvsafe/comm/channel.hpp"
#include "cvsafe/core/evaluation.hpp"
#include "cvsafe/eval/agent.hpp"
#include "cvsafe/scenario/left_turn.hpp"
#include "cvsafe/vehicle/accel_profile.hpp"
#include "cvsafe/vehicle/trajectory.hpp"

/// \file simulation.hpp
/// The closed-loop left-turn simulation of Section V: ego control stack
/// vs an oncoming vehicle driving a random acceleration sequence, under a
/// configurable communication / sensing disturbance.

namespace cvsafe::eval {

/// Workload generation parameters (the paper's Section V setup).
struct WorkloadParams {
  /// Grid of oncoming initial positions, paper coordinates
  /// {50.5 + 0.5 j | j = 0..19}; one is drawn per simulation.
  std::vector<double> p1_grid;

  /// Oncoming initial speed range [m/s].
  double v1_init_min = 7.0;
  double v1_init_max = 14.0;

  /// Random acceleration-sequence shape.
  vehicle::AccelProfileParams profile;

  /// The paper's grid.
  static std::vector<double> paper_p1_grid();
};

/// Full configuration of one simulation cell.
struct SimConfig {
  scenario::LeftTurnGeometry geometry;
  vehicle::VehicleLimits ego_limits{0.0, 15.0, -6.0, 3.0};
  vehicle::VehicleLimits c1_limits{2.0, 15.0, -3.0, 3.0};
  double dt_c = 0.05;    ///< control period [s]
  double horizon = 25.0; ///< episode cut-off [s]
  double ego_v0 = 8.0;   ///< ego initial speed [m/s]
  comm::CommConfig comm = comm::CommConfig::no_disturbance();
  sensing::SensorConfig sensor = sensing::SensorConfig::uniform(1.0);
  WorkloadParams workload;

  /// Paper-default configuration (Section V parameters).
  static SimConfig paper_defaults();

  /// The shared scenario math object for this configuration.
  std::shared_ptr<const scenario::LeftTurnScenario> make_scenario() const;
};

/// Reusable description of an agent; make() produces a fresh control
/// stack (estimator state is per episode).
struct AgentBlueprint {
  std::string name;
  std::shared_ptr<const scenario::LeftTurnScenario> scenario;
  std::shared_ptr<const nn::Mlp> net;  ///< null for expert agents
  /// Non-empty: kappa_n is a deep ensemble of these members (takes
  /// precedence over `net`).
  std::vector<std::shared_ptr<const nn::Mlp>> ensemble;
  sensing::SensorConfig sensor;
  AgentConfig config;

  std::unique_ptr<LeftTurnAgent> make() const;
};

/// Outcome of a single simulation.
struct SimResult {
  bool collided = false;     ///< both vehicles in the zone simultaneously
  bool reached = false;      ///< ego reached the target set
  double reach_time = 0.0;   ///< t_r when reached
  double eta = 0.0;          ///< evaluation function (Section II-A)
  std::size_t steps = 0;     ///< control steps executed
  std::size_t emergency_steps = 0;  ///< steps handled by kappa_e
};

/// Optional per-step recording for figures and examples.
struct SimTrace {
  vehicle::Trajectory ego;
  vehicle::Trajectory c1;                 ///< oncoming, u frame
  std::vector<double> accel_commands;     ///< ego command per step
  std::vector<bool> emergency_flags;      ///< kappa_e engaged per step
  std::vector<double> tau1_lo, tau1_hi;   ///< NN-facing window per step
  std::vector<core::SwitchEvent> switches;  ///< monitor hand-overs
};

/// Runs one episode. \p seed drives every random choice (workload,
/// channel drops, sensor noise), so results are exactly reproducible and
/// different planners can be compared on *paired* workloads by sharing
/// seeds. \p trace, when non-null, receives the per-step recording.
SimResult run_left_turn_simulation(const SimConfig& config,
                                   const AgentBlueprint& blueprint,
                                   std::uint64_t seed,
                                   SimTrace* trace = nullptr);

}  // namespace cvsafe::eval
