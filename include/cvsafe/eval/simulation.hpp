#pragma once

#include "cvsafe/eval/agent.hpp"
#include "cvsafe/sim/left_turn.hpp"

/// \file simulation.hpp
/// Compatibility aliases: the left-turn closed loop now runs on the
/// generic engine in cvsafe/sim/left_turn.hpp. Existing call sites keep
/// compiling against the eval:: names.

namespace cvsafe::eval {

using WorkloadParams = sim::WorkloadParams;
using SimConfig = sim::LeftTurnSimConfig;
using AgentBlueprint = sim::AgentBlueprint;
using SimResult = sim::RunResult;
using SimTrace = sim::SimTrace;

using sim::run_left_turn_simulation;

}  // namespace cvsafe::eval
