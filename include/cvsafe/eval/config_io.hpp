#pragma once

#include <string>

#include "cvsafe/eval/simulation.hpp"
#include "cvsafe/util/config_file.hpp"

/// \file config_io.hpp
/// SimConfig <-> INI configuration files, so experiments can be described
/// declaratively and rerun from the command line:
///
///   [geometry]
///   ego_front = 5.0
///   ego_back = 15.0
///   [comm]
///   drop_prob = 0.4
///   delay = 0.25
///   [sensor]
///   delta = 1.0
///
/// Unknown keys are rejected to catch typos.

namespace cvsafe::eval {

/// Applies the recognized keys of \p file on top of \p base.
/// Throws std::runtime_error on unknown keys or invalid values.
SimConfig apply_config_file(SimConfig base, const util::ConfigFile& file);

/// Convenience: paper defaults + overrides from \p path.
SimConfig load_sim_config(const std::string& path);

/// Serializes every recognized key of \p config as an INI document that
/// apply_config_file reproduces exactly (round trip).
std::string sim_config_to_ini(const SimConfig& config);

/// Writes sim_config_to_ini to \p path. Returns false on I/O failure.
bool save_sim_config(const SimConfig& config, const std::string& path);

}  // namespace cvsafe::eval
