#pragma once

#include "cvsafe/eval/simulation.hpp"
#include "cvsafe/sim/multi_vehicle.hpp"

/// \file multi_simulation.hpp
/// Compatibility aliases: the multi-vehicle closed loop now runs on the
/// generic engine in cvsafe/sim/multi_vehicle.hpp.

namespace cvsafe::eval {

using MultiVehicleConfig = sim::MultiVehicleConfig;
using MultiAgentSetup = sim::MultiAgentSetup;
using MultiSimResult = sim::RunResult;
using MultiBatchStats = sim::BatchStats;

using sim::run_multi_left_turn_simulation;
using sim::run_multi_batch;

}  // namespace cvsafe::eval
