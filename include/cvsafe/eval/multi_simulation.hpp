#pragma once

#include <cstdint>
#include <memory>

#include "cvsafe/eval/simulation.hpp"
#include "cvsafe/scenario/multi_vehicle.hpp"

/// \file multi_simulation.hpp
/// Closed-loop simulation with multiple oncoming vehicles (the paper's
/// general n-vehicle system model, Section II-A), each with its own V2V
/// channel, sensor stream and per-vehicle estimators.

namespace cvsafe::eval {

/// Configuration of the oncoming platoon.
struct MultiVehicleConfig {
  std::size_t num_oncoming = 2;   ///< vehicles on the opposing lane
  double platoon_spacing = 25.0;  ///< mean initial headway [m]
  double spacing_jitter = 8.0;    ///< +- uniform jitter on the headway [m]
};

/// Compound-planner configuration for the multi-vehicle run.
struct MultiAgentSetup {
  std::shared_ptr<const scenario::LeftTurnScenario> scenario;
  std::shared_ptr<const nn::Mlp> net;  ///< null -> analytic expert planner
  planners::ExpertParams expert_params =
      planners::ExpertParams::conservative();
  bool use_compound = true;
  bool use_info_filter = true;    ///< ultimate per-vehicle estimators
  bool use_aggressive = true;     ///< aggressive windows for the planner
  scenario::AggressiveBuffers buffers;
};

/// Outcome of one multi-vehicle episode (collision against ANY vehicle).
struct MultiSimResult {
  bool collided = false;
  bool reached = false;
  double reach_time = 0.0;
  double eta = 0.0;
  std::size_t steps = 0;
  std::size_t emergency_steps = 0;
};

/// Runs one episode with \p setup controlling the ego against
/// \p multi.num_oncoming vehicles driving random acceleration sequences.
MultiSimResult run_multi_left_turn_simulation(const SimConfig& config,
                                              const MultiVehicleConfig& multi,
                                              const MultiAgentSetup& setup,
                                              std::uint64_t seed);

/// Aggregate over a batch of multi-vehicle episodes.
struct MultiBatchStats {
  std::size_t n = 0;
  std::size_t safe_count = 0;
  std::size_t reached_count = 0;
  std::size_t total_steps = 0;
  std::size_t emergency_steps = 0;
  double mean_eta = 0.0;
  double mean_reach_time = 0.0;  ///< over reached episodes

  double safe_rate() const {
    return n ? static_cast<double>(safe_count) / static_cast<double>(n) : 0.0;
  }
  double reach_rate() const {
    return n ? static_cast<double>(reached_count) / static_cast<double>(n)
             : 0.0;
  }
  double emergency_frequency() const {
    return total_steps ? static_cast<double>(emergency_steps) /
                             static_cast<double>(total_steps)
                       : 0.0;
  }
};

/// Parallel batch of multi-vehicle episodes (seeds base_seed ... +n-1).
MultiBatchStats run_multi_batch(const SimConfig& config,
                                const MultiVehicleConfig& multi,
                                const MultiAgentSetup& setup, std::size_t n,
                                std::uint64_t base_seed = 1,
                                std::size_t threads = 0);

}  // namespace cvsafe::eval
