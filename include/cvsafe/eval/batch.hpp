#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cvsafe/eval/simulation.hpp"

/// \file batch.hpp
/// Parallel batch execution and the aggregate statistics reported in
/// Tables I and II of the paper.

namespace cvsafe::eval {

/// Aggregate over a batch of simulations.
struct BatchStats {
  std::size_t n = 0;
  std::size_t safe_count = 0;        ///< episodes without collision
  std::size_t reached_count = 0;     ///< episodes reaching the target set
  std::size_t total_steps = 0;       ///< control steps across the batch
  std::size_t emergency_steps = 0;   ///< kappa_e steps across the batch
  double mean_eta = 0.0;             ///< mean evaluation value
  double mean_reach_time = 0.0;      ///< mean t_r over safe reached episodes
  std::vector<double> etas;          ///< per-episode eta (seed-aligned)

  double safe_rate() const {
    return n ? static_cast<double>(safe_count) / static_cast<double>(n) : 0.0;
  }
  double reach_rate() const {
    return n ? static_cast<double>(reached_count) / static_cast<double>(n)
             : 0.0;
  }
  double emergency_frequency() const {
    return total_steps ? static_cast<double>(emergency_steps) /
                             static_cast<double>(total_steps)
                       : 0.0;
  }

  /// Merges another batch (concatenating etas in order).
  void merge(const BatchStats& other);
};

/// Runs \p n simulations with seeds base_seed .. base_seed + n - 1 in
/// parallel (CVSAFE_THREADS-controllable worker count, 0 = hardware).
/// Seeds drive the entire episode, so two batches over the same seed range
/// see *paired* workloads and disturbances.
BatchStats run_batch(const SimConfig& config, const AgentBlueprint& blueprint,
                     std::size_t n, std::uint64_t base_seed = 1,
                     std::size_t threads = 0);

/// Winning percentage of Tables I and II: the fraction of paired episodes
/// in which planner A achieves a higher eta than planner B. \p tolerance
/// treats differences up to it as wins for A, except that an exact tie is
/// a coin flip and counts half a win; the tables use a tolerance
/// equivalent to one control step of reaching time (eta values within
/// ~1e-3 of each other describe episodes that differ by at most one
/// 50 ms decision), matching the paper's tie-inclusive percentages.
double winning_fraction(std::span<const double> etas_a,
                        std::span<const double> etas_b,
                        double tolerance = 0.0);

}  // namespace cvsafe::eval
