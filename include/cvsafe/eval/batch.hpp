#pragma once

#include <cstdint>
#include <span>

#include "cvsafe/eval/simulation.hpp"

/// \file batch.hpp
/// Parallel batch execution (now a thin veneer over the generic engine's
/// batch runner) and the paired-episode winning percentage reported in
/// Tables I and II of the paper.

namespace cvsafe::eval {

using BatchStats = sim::BatchStats;

/// Runs \p n simulations with seeds base_seed .. base_seed + n - 1 in
/// parallel (CVSAFE_THREADS-controllable worker count, 0 = hardware).
/// Seeds drive the entire episode, so two batches over the same seed range
/// see *paired* workloads and disturbances. Single-network NN blueprints
/// are evaluated in lockstep (batched NN inference across episodes),
/// bit-identically to the per-episode path.
inline BatchStats run_batch(const SimConfig& config,
                            const AgentBlueprint& blueprint, std::size_t n,
                            std::uint64_t base_seed = 1,
                            std::size_t threads = 0) {
  return sim::run_left_turn_batch(config, blueprint, n, base_seed, threads);
}

/// run_batch on the fleet engine (sim/fleet.hpp): SoA episode pool,
/// work-stealing admission, mega-batched NN planning. Byte-identical
/// stats (including eta order) to run_batch for any thread count / pool
/// capacity; preferred for campaign-scale cells where episode-length
/// imbalance would otherwise idle lockstep shards.
inline BatchStats run_batch_fleet(const SimConfig& config,
                                  const AgentBlueprint& blueprint,
                                  std::size_t n, std::uint64_t base_seed = 1,
                                  std::size_t threads = 0,
                                  std::size_t pool_capacity = 8192,
                                  const sim::FleetObsSinks& sinks = {}) {
  sim::FleetConfig fleet;
  fleet.threads = threads;
  fleet.pool_capacity = pool_capacity;
  return sim::run_left_turn_fleet(config, blueprint, n, base_seed, fleet,
                                  sinks)
      .stats;
}

/// Winning percentage of Tables I and II: the fraction of paired episodes
/// in which planner A achieves a higher eta than planner B. \p tolerance
/// treats differences up to it as wins for A, except that an exact tie is
/// a coin flip and counts half a win; the tables use a tolerance
/// equivalent to one control step of reaching time (eta values within
/// ~1e-3 of each other describe episodes that differ by at most one
/// 50 ms decision), matching the paper's tie-inclusive percentages.
double winning_fraction(std::span<const double> etas_a,
                        std::span<const double> etas_b,
                        double tolerance = 0.0);

}  // namespace cvsafe::eval
