#pragma once

#include "cvsafe/sim/intersection.hpp"

/// \file intersection_sim.hpp
/// Compatibility aliases: the intersection closed loop now runs on the
/// generic engine in cvsafe/sim/intersection.hpp.

namespace cvsafe::eval {

using IntersectionSimConfig = sim::IntersectionSimConfig;
using IntersectionSimResult = sim::RunResult;
using IntersectionBatchStats = sim::BatchStats;

using sim::run_intersection_simulation;
using sim::run_intersection_batch;

}  // namespace cvsafe::eval
