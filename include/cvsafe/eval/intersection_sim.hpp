#pragma once

#include <cstdint>
#include <memory>

#include "cvsafe/comm/channel.hpp"
#include "cvsafe/scenario/intersection.hpp"
#include "cvsafe/sensing/sensor.hpp"

/// \file intersection_sim.hpp
/// Closed-loop evaluation of the two-zone intersection crossing: streams
/// of crossing vehicles on both lanes, each observed through its own
/// (possibly disturbed) V2V channel and noisy sensor; the monitor builds
/// per-lane occupancy-window sets from sound per-vehicle estimates.

namespace cvsafe::eval {

/// Configuration of one intersection simulation cell.
struct IntersectionSimConfig {
  scenario::IntersectionGeometry geometry;
  vehicle::VehicleLimits ego_limits{0.0, 15.0, -6.0, 3.0};
  vehicle::VehicleLimits cross_limits{2.0, 14.0, -3.0, 3.0};
  double dt_c = 0.05;
  double horizon = 40.0;
  double ego_v0 = 8.0;
  comm::CommConfig comm = comm::CommConfig::no_disturbance();
  sensing::SensorConfig sensor = sensing::SensorConfig::uniform(1.0);

  /// Cross-traffic stream shape (per lane).
  std::size_t vehicles_per_lane = 2;
  double headway_min = 20.0;  ///< spacing between stream vehicles [m]
  double headway_max = 45.0;
  double v_init_min = 6.0;
  double v_init_max = 12.0;

  /// Crossing corridor of the perpendicular road in each cross vehicle's
  /// OWN path coordinate (entry / exit of the conflict square).
  double cross_zone_front = 30.0;
  double cross_zone_back = 33.5;
  /// Initial distance of each lane's lead vehicle to its zone entry [m].
  double lead_gap_min = 20.0;
  double lead_gap_max = 50.0;

  std::shared_ptr<const scenario::IntersectionScenario> make_scenario()
      const;
};

/// Episode outcome.
struct IntersectionSimResult {
  bool collided = false;  ///< co-presence in either conflict square
  bool reached = false;
  double reach_time = 0.0;
  double eta = 0.0;
  std::size_t steps = 0;
  std::size_t emergency_steps = 0;
};

/// Runs one episode. \p use_compound wraps the reckless cruise planner in
/// the compound planner; without it the baseline simply drives through.
IntersectionSimResult run_intersection_simulation(
    const IntersectionSimConfig& config, bool use_compound,
    std::uint64_t seed);

/// Aggregate over a batch (parallel, seed-paired).
struct IntersectionBatchStats {
  std::size_t n = 0;
  std::size_t safe_count = 0;
  std::size_t reached_count = 0;
  std::size_t total_steps = 0;
  std::size_t emergency_steps = 0;
  double mean_eta = 0.0;
  double mean_reach_time = 0.0;

  double safe_rate() const {
    return n ? static_cast<double>(safe_count) / static_cast<double>(n) : 0.0;
  }
  double emergency_frequency() const {
    return total_steps ? static_cast<double>(emergency_steps) /
                             static_cast<double>(total_steps)
                       : 0.0;
  }
};

IntersectionBatchStats run_intersection_batch(
    const IntersectionSimConfig& config, bool use_compound, std::size_t n,
    std::uint64_t base_seed = 1, std::size_t threads = 0);

}  // namespace cvsafe::eval
