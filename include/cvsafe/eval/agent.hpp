#pragma once

#include "cvsafe/sim/left_turn_stack.hpp"

/// \file agent.hpp
/// Compatibility aliases: the left-turn control-stack assembly now lives
/// in cvsafe/sim/left_turn_stack.hpp as sim::LeftTurnStack.

namespace cvsafe::eval {

using AgentConfig = sim::AgentConfig;
using LeftTurnAgent = sim::LeftTurnStack;

}  // namespace cvsafe::eval
