#pragma once

/// \file cvsafe.hpp
/// Umbrella header: the entire public API in one include.

// Core framework (the paper's contribution).
#include "cvsafe/core/compound_planner.hpp"
#include "cvsafe/core/evaluation.hpp"
#include "cvsafe/core/guard.hpp"
#include "cvsafe/core/planner.hpp"
#include "cvsafe/core/preimage.hpp"
#include "cvsafe/core/safety_model.hpp"
#include "cvsafe/core/version.hpp"

// Substrates.
#include "cvsafe/comm/channel.hpp"
#include "cvsafe/comm/message.hpp"
#include "cvsafe/filter/consistency.hpp"
#include "cvsafe/filter/estimate.hpp"
#include "cvsafe/filter/info_filter.hpp"
#include "cvsafe/filter/kalman.hpp"
#include "cvsafe/filter/naive.hpp"
#include "cvsafe/filter/reachability.hpp"
#include "cvsafe/sensing/sensor.hpp"
#include "cvsafe/vehicle/accel_profile.hpp"
#include "cvsafe/vehicle/dynamics.hpp"
#include "cvsafe/vehicle/state.hpp"
#include "cvsafe/vehicle/trajectory.hpp"

// Neural-network substrate.
#include "cvsafe/nn/activation.hpp"
#include "cvsafe/nn/gradcheck.hpp"
#include "cvsafe/nn/layer.hpp"
#include "cvsafe/nn/loss.hpp"
#include "cvsafe/nn/matrix.hpp"
#include "cvsafe/nn/metrics.hpp"
#include "cvsafe/nn/mlp.hpp"
#include "cvsafe/nn/normalizer.hpp"
#include "cvsafe/nn/optimizer.hpp"
#include "cvsafe/nn/schedule.hpp"
#include "cvsafe/nn/serialize.hpp"
#include "cvsafe/nn/trainer.hpp"

// Scenarios.
#include "cvsafe/scenario/intersection.hpp"
#include "cvsafe/scenario/lane_change.hpp"
#include "cvsafe/scenario/left_turn.hpp"
#include "cvsafe/scenario/multi_vehicle.hpp"
#include "cvsafe/scenario/safety_model.hpp"
#include "cvsafe/scenario/world.hpp"

// Planners.
#include "cvsafe/planners/ensemble.hpp"
#include "cvsafe/planners/expert.hpp"
#include "cvsafe/planners/nn_planner.hpp"
#include "cvsafe/planners/training.hpp"

// Evaluation harness.
#include "cvsafe/eval/agent.hpp"
#include "cvsafe/eval/batch.hpp"
#include "cvsafe/eval/config_io.hpp"
#include "cvsafe/eval/experiments.hpp"
#include "cvsafe/eval/intersection_sim.hpp"
#include "cvsafe/eval/lane_change_sim.hpp"
#include "cvsafe/eval/multi_simulation.hpp"
#include "cvsafe/eval/simulation.hpp"

// Offline verification.
#include "cvsafe/verify/certify.hpp"

// Utilities.
#include "cvsafe/util/config.hpp"
#include "cvsafe/util/config_file.hpp"
#include "cvsafe/util/csv.hpp"
#include "cvsafe/util/interval.hpp"
#include "cvsafe/util/interval_set.hpp"
#include "cvsafe/util/kinematics.hpp"
#include "cvsafe/util/linalg.hpp"
#include "cvsafe/util/rng.hpp"
#include "cvsafe/util/stats.hpp"
#include "cvsafe/util/table.hpp"
#include "cvsafe/util/thread_pool.hpp"
