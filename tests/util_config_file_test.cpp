#include "cvsafe/util/config_file.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "cvsafe/eval/config_io.hpp"

namespace cvsafe::util {
namespace {

ConfigFile parse(const std::string& text) {
  std::istringstream is(text);
  return ConfigFile::parse(is);
}

TEST(ConfigFile, ParsesSectionsAndKeys) {
  const auto c = parse(
      "top = 1\n"
      "# a comment\n"
      "[comm]\n"
      "drop_prob = 0.4   # trailing comment\n"
      "delay=0.25\n"
      "\n"
      "[sensor]\n"
      "delta = 2.0\n");
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.get_string("top", ""), "1");
  EXPECT_EQ(c.get_double("comm.drop_prob", 0.0), 0.4);
  EXPECT_EQ(c.get_double("comm.delay", 0.0), 0.25);
  EXPECT_EQ(c.get_double("sensor.delta", 0.0), 2.0);
  EXPECT_FALSE(c.has("comm.missing"));
}

TEST(ConfigFile, TypedAccessorsAndDefaults) {
  const auto c = parse("a = 7\nb = yes\nc = off\nd = text\n");
  EXPECT_EQ(c.get_int("a", 0), 7);
  EXPECT_TRUE(c.get_bool("b", false));
  EXPECT_FALSE(c.get_bool("c", true));
  EXPECT_EQ(c.get_string("d", ""), "text");
  EXPECT_EQ(c.get_int("missing", 42), 42);
  EXPECT_EQ(c.get_double("missing", 1.5), 1.5);
}

TEST(ConfigFile, RejectsMalformedInput) {
  EXPECT_THROW(parse("novalue\n"), std::runtime_error);
  EXPECT_THROW(parse("[unclosed\n"), std::runtime_error);
  EXPECT_THROW(parse("= 3\n"), std::runtime_error);
  const auto c = parse("x = notanumber\n");
  EXPECT_THROW(c.get_double("x", 0.0), std::runtime_error);
  EXPECT_THROW(c.get_int("x", 0), std::runtime_error);
  EXPECT_THROW(c.get_bool("x", false), std::runtime_error);
}

TEST(ConfigFile, SetOverrides) {
  ConfigFile c;
  c.set("k", "3.5");
  EXPECT_EQ(c.get_double("k", 0.0), 3.5);
}

}  // namespace
}  // namespace cvsafe::util

namespace cvsafe::eval {
namespace {

util::ConfigFile parse(const std::string& text) {
  std::istringstream is(text);
  return util::ConfigFile::parse(is);
}

TEST(ConfigIo, AppliesCommAndSensor) {
  const auto cfg = apply_config_file(
      SimConfig::paper_defaults(),
      parse("[comm]\ndrop_prob = 0.4\ndelay = 0.25\n[sensor]\n"
            "delta = 2.5\n"));
  EXPECT_EQ(cfg.comm.drop_prob, 0.4);
  EXPECT_EQ(cfg.comm.delay, 0.25);
  EXPECT_EQ(cfg.sensor.delta_p, 2.5);
  EXPECT_EQ(cfg.sensor.delta_v, 2.5);
}

TEST(ConfigIo, GeometryMirrorsOncomingZone) {
  const auto cfg = apply_config_file(
      SimConfig::paper_defaults(),
      parse("[geometry]\nego_front = 6\nego_back = 18\nego_target = 25\n"));
  EXPECT_EQ(cfg.geometry.ego_front, 6.0);
  EXPECT_EQ(cfg.geometry.c1_front, -18.0);
  EXPECT_EQ(cfg.geometry.c1_back, -6.0);
}

TEST(ConfigIo, LostAndBurstChannels) {
  const auto lost = apply_config_file(SimConfig::paper_defaults(),
                                      parse("[comm]\nlost = true\n"));
  EXPECT_TRUE(lost.comm.lost);
  const auto burst = apply_config_file(
      SimConfig::paper_defaults(),
      parse("[comm]\nburst = true\nburst_bad_fraction = 0.25\n"
            "burst_mean_len = 5\n"));
  EXPECT_TRUE(burst.comm.burst);
  EXPECT_NEAR(burst.comm.stationary_drop_prob(), 0.25, 1e-9);
}

TEST(ConfigIo, RejectsUnknownKeysAndInvalidValues) {
  EXPECT_THROW(apply_config_file(SimConfig::paper_defaults(),
                                 parse("[comm]\ndorp_prob = 0.4\n")),
               std::runtime_error);
  EXPECT_THROW(apply_config_file(SimConfig::paper_defaults(),
                                 parse("[sim]\ndt_c = -1\n")),
               std::runtime_error);
  EXPECT_THROW(apply_config_file(
                   SimConfig::paper_defaults(),
                   parse("[geometry]\nego_front = 20\nego_back = 10\n")),
               std::runtime_error);
}

TEST(ConfigIo, SaveLoadRoundTrip) {
  SimConfig original = SimConfig::paper_defaults();
  original.comm = comm::CommConfig::delayed(0.35, 0.2);
  original.sensor = sensing::SensorConfig::uniform(2.25, 0.2);
  original.ego_v0 = 9.5;
  original.geometry.ego_front = 4.0;
  original.geometry.c1_front = -original.geometry.ego_back;
  original.geometry.c1_back = -original.geometry.ego_front;

  std::istringstream ini(sim_config_to_ini(original));
  const SimConfig loaded = apply_config_file(
      SimConfig::paper_defaults(), util::ConfigFile::parse(ini));
  EXPECT_EQ(loaded.comm.drop_prob, original.comm.drop_prob);
  EXPECT_EQ(loaded.comm.delay, original.comm.delay);
  EXPECT_EQ(loaded.sensor.delta_p, original.sensor.delta_p);
  EXPECT_EQ(loaded.sensor.period, original.sensor.period);
  EXPECT_EQ(loaded.ego_v0, original.ego_v0);
  EXPECT_EQ(loaded.geometry.ego_front, original.geometry.ego_front);
  EXPECT_EQ(loaded.geometry.c1_back, original.geometry.c1_back);
}

TEST(ConfigIo, SaveLoadRoundTripBurstAndLost) {
  SimConfig burst = SimConfig::paper_defaults();
  burst.comm = comm::CommConfig::bursty(0.3, 6.0, 0.25);
  std::istringstream b(sim_config_to_ini(burst));
  const SimConfig burst2 = apply_config_file(
      SimConfig::paper_defaults(), util::ConfigFile::parse(b));
  EXPECT_TRUE(burst2.comm.burst);
  EXPECT_NEAR(burst2.comm.stationary_drop_prob(),
              burst.comm.stationary_drop_prob(), 1e-9);

  SimConfig lost = SimConfig::paper_defaults();
  lost.comm = comm::CommConfig::messages_lost();
  std::istringstream l(sim_config_to_ini(lost));
  const SimConfig lost2 = apply_config_file(
      SimConfig::paper_defaults(), util::ConfigFile::parse(l));
  EXPECT_TRUE(lost2.comm.lost);
}

TEST(ConfigIo, LoadedConfigRunsSafely) {
  const auto cfg = apply_config_file(
      SimConfig::paper_defaults(),
      parse("[comm]\ndrop_prob = 0.5\ndelay = 0.25\n[ego]\nv0 = 10\n"));
  AgentBlueprint bp;
  bp.scenario = cfg.make_scenario();
  bp.sensor = cfg.sensor;
  bp.config = AgentConfig::ultimate_compound();
  bp.config.use_expert_planner = true;
  bp.config.expert_params = planners::ExpertParams::aggressive();
  bp.name = "config-io";
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    EXPECT_FALSE(run_left_turn_simulation(cfg, bp, seed).collided);
  }
}

}  // namespace
}  // namespace cvsafe::eval
