#include "cvsafe/filter/info_filter.hpp"

#include <gtest/gtest.h>

#include "cvsafe/comm/channel.hpp"
#include "cvsafe/filter/naive.hpp"
#include "cvsafe/util/rng.hpp"
#include "cvsafe/vehicle/accel_profile.hpp"
#include "cvsafe/vehicle/dynamics.hpp"

namespace cvsafe::filter {
namespace {

const vehicle::VehicleLimits kLimits{2.0, 15.0, -3.0, 3.0};
const sensing::SensorConfig kSensor = sensing::SensorConfig::uniform(1.5, 0.1);

comm::Message msg(double t, double p, double v, double a) {
  return comm::Message{1, vehicle::VehicleSnapshot{t, {p, v}, a}};
}

TEST(InfoFilterOptions, Presets) {
  const auto basic = InfoFilterOptions::basic();
  EXPECT_FALSE(basic.use_kalman);
  EXPECT_TRUE(basic.use_message_reachability);
  const auto ult = InfoFilterOptions::ultimate();
  EXPECT_TRUE(ult.use_kalman);
  EXPECT_TRUE(ult.kalman_message_rollback);
}

TEST(InfoFilter, InvalidBeforeAnyInformation) {
  InformationFilter f(kLimits, kSensor, InfoFilterOptions::basic());
  EXPECT_FALSE(f.estimate(0.0).valid);
}

TEST(InfoFilter, MessageOnlyGivesReachabilityBounds) {
  InformationFilter f(kLimits, kSensor, InfoFilterOptions::basic());
  f.on_message(msg(0.0, -50.0, 8.0, 0.0));
  const auto est = f.estimate(1.0);
  ASSERT_TRUE(est.valid);
  // Eq. 2 bounds after 1 s from exact (p=-50, v=8).
  EXPECT_NEAR(est.p.hi, -50.0 + 8.0 + 1.5, 1e-9);
  EXPECT_NEAR(est.p.lo, -50.0 + 8.0 - 1.5, 1e-9);
  EXPECT_TRUE(est.p.contains(est.p_hat));
}

TEST(InfoFilter, SensorOnlyGivesInflatedBounds) {
  InformationFilter f(kLimits, kSensor, InfoFilterOptions::basic());
  f.on_sensor({0.0, -50.0, 8.0, 0.0});
  const auto est = f.estimate(0.0);
  ASSERT_TRUE(est.valid);
  EXPECT_NEAR(est.p.width(), 2.0 * kSensor.delta_p, 1e-9);
}

TEST(InfoFilter, JoinIntersectsMessageAndSensor) {
  InformationFilter f(kLimits, kSensor, InfoFilterOptions::basic());
  f.on_message(msg(0.0, -50.0, 8.0, 0.0));
  f.on_sensor({0.0, -49.0, 8.5, 0.0});
  const auto est = f.estimate(0.0);
  ASSERT_TRUE(est.valid);
  // Message is exact at t=0: the join must collapse to (nearly) the
  // message value.
  EXPECT_NEAR(est.p.lo, -50.0, 1e-9);
  EXPECT_NEAR(est.p.hi, -50.0, 1e-9);
}

TEST(InfoFilter, FresherMessageWins) {
  InformationFilter f(kLimits, kSensor, InfoFilterOptions::basic());
  f.on_message(msg(1.0, -40.0, 9.0, 0.0));
  f.on_message(msg(0.5, -45.0, 9.0, 0.0));  // stale duplicate, out of order
  const auto est = f.estimate(1.0);
  EXPECT_NEAR(est.p_hat, -40.0, 1e-9);
}

TEST(InfoFilter, AccelerationFromFreshestSource) {
  InformationFilter f(kLimits, kSensor, InfoFilterOptions::basic());
  f.on_message(msg(0.0, -50.0, 8.0, 1.5));
  EXPECT_NEAR(f.estimate(0.0).a_hat, 1.5, 1e-12);
  f.on_sensor({0.5, -46.0, 8.5, -0.5});
  EXPECT_NEAR(f.estimate(0.5).a_hat, -0.5, 1e-12);
}

TEST(InfoFilter, UltimateTighterThanBasic) {
  // Run both estimators on an identical stream; the Kalman fusion must
  // (on average) yield narrower position intervals.
  util::Rng rng(5);
  vehicle::DoubleIntegrator dyn(kLimits);
  vehicle::VehicleState s{-55.0, 9.0};
  const double dt_c = 0.05;
  const auto steps = static_cast<std::size_t>(10.0 / dt_c);
  const auto profile =
      vehicle::AccelProfile::random(steps, dt_c, s.v, kLimits, {}, rng);

  InformationFilter basic(kLimits, kSensor, InfoFilterOptions::basic());
  InformationFilter ult(kLimits, kSensor, InfoFilterOptions::ultimate());
  sensing::Sensor sensor(kSensor);
  comm::Channel channel(comm::CommConfig::delayed(0.5, 0.25, 0.1));

  double width_basic = 0.0, width_ult = 0.0;
  int count = 0;
  for (std::size_t step = 0; step < steps; ++step) {
    const double t = static_cast<double>(step) * dt_c;
    const double a = profile.at(step);
    const vehicle::VehicleSnapshot snap{t, s, a};
    channel.offer(comm::Message{1, snap}, rng);
    for (const auto& m : channel.collect(t)) {
      basic.on_message(m);
      ult.on_message(m);
    }
    if (const auto r = sensor.sense(snap, rng)) {
      basic.on_sensor(*r);
      ult.on_sensor(*r);
    }
    const auto eb = basic.estimate(t);
    const auto eu = ult.estimate(t);
    if (eb.valid && eu.valid) {
      width_basic += eb.p.width();
      width_ult += eu.p.width();
      ++count;
      // The truth must stay inside the basic (sound) bounds.
      ASSERT_TRUE(eb.p.inflated(1e-9).contains(s.p)) << "t=" << t;
    }
    s = dyn.step(s, a, dt_c);
  }
  ASSERT_GT(count, 100);
  EXPECT_LT(width_ult, width_basic);
}

// Property: the ultimate estimate's point prediction tracks the truth
// closely even when every message is lost (sensor-only operation).
TEST(InfoFilterProperty, SensorOnlyTracking) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::Rng rng(seed);
    vehicle::DoubleIntegrator dyn(kLimits);
    vehicle::VehicleState s{-55.0, rng.uniform(6, 12)};
    const double dt_c = 0.05;
    const auto steps = static_cast<std::size_t>(8.0 / dt_c);
    const auto profile =
        vehicle::AccelProfile::random(steps, dt_c, s.v, kLimits, {}, rng);
    InformationFilter ult(kLimits, kSensor, InfoFilterOptions::ultimate());
    sensing::Sensor sensor(kSensor);

    double err = 0.0;
    int n = 0;
    for (std::size_t step = 0; step < steps; ++step) {
      const double t = static_cast<double>(step) * dt_c;
      const double a = profile.at(step);
      if (const auto r =
              sensor.sense(vehicle::VehicleSnapshot{t, s, a}, rng)) {
        ult.on_sensor(*r);
      }
      const auto est = ult.estimate(t);
      if (est.valid && t > 1.0) {
        err += std::abs(est.p_hat - s.p);
        ++n;
      }
      s = dyn.step(s, a, dt_c);
    }
    ASSERT_GT(n, 0);
    // Mean absolute error well under the raw sensor noise half-width.
    EXPECT_LT(err / n, kSensor.delta_p) << "seed " << seed;
  }
}

TEST(NaiveExtrapolator, ExtrapolatesConstantVelocity) {
  NaiveExtrapolator naive;
  EXPECT_FALSE(naive.estimate(0.0).valid);
  naive.on_message(msg(0.0, -50.0, 8.0, 1.0));
  const auto est = naive.estimate(0.3);
  ASSERT_TRUE(est.valid);
  EXPECT_NEAR(est.p_hat, -50.0 + 8.0 * 0.3, 1e-9);
  EXPECT_NEAR(est.v_hat, 8.0, 1e-9);
  EXPECT_EQ(est.p.width(), 0.0);  // message content believed exactly
}

TEST(NaiveExtrapolator, PrefersFreshMessagesOverSensor) {
  // Exact V2V content wins over the noisy sensor while fresh enough.
  NaiveExtrapolator naive(1.0, 1.0, /*max_message_age=*/0.5);
  naive.on_message(msg(0.0, -50.0, 8.0, 0.0));
  naive.on_sensor({0.2, -47.9, 8.2, 0.1});
  const auto est = naive.estimate(0.3);
  EXPECT_NEAR(est.p_hat, -50.0 + 8.0 * 0.3, 1e-9);  // from the message
  EXPECT_EQ(est.p.width(), 0.0);
}

TEST(NaiveExtrapolator, FallsBackToSensorWhenMessagesStale) {
  NaiveExtrapolator naive(1.0, 0.5, /*max_message_age=*/0.5);
  naive.on_message(msg(0.0, -50.0, 8.0, 0.0));
  naive.on_sensor({1.0, -41.8, 8.2, 0.1});
  const auto est = naive.estimate(1.1);  // message is 1.1 s old: stale
  EXPECT_NEAR(est.p_hat, -41.8 + 8.2 * 0.1, 1e-9);
  // Sensor-based estimates carry the noise half-widths.
  EXPECT_NEAR(est.p.width(), 2.0, 1e-9);
  EXPECT_NEAR(est.v.width(), 1.0, 1e-9);
}

TEST(NaiveExtrapolator, MessageOnlyUsedWhenSensorAbsent) {
  NaiveExtrapolator naive(1.0, 1.0, 0.5);
  naive.on_message(msg(0.0, -50.0, 8.0, 0.0));
  // Even a stale message is better than nothing.
  const auto est = naive.estimate(3.0);
  ASSERT_TRUE(est.valid);
  EXPECT_NEAR(est.p_hat, -50.0 + 24.0, 1e-9);
}

}  // namespace
}  // namespace cvsafe::filter
