#include "cvsafe/fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "cvsafe/fault/faulty_channel.hpp"
#include "cvsafe/fault/faulty_sensor.hpp"
#include "cvsafe/util/contracts.hpp"

namespace cvsafe::fault {
namespace {

using util::ContractMode;
using util::ContractViolation;
using util::ScopedContractMode;

comm::Message make_msg(double t, double p = 0.0, double v = 5.0,
                       double a = 0.0) {
  return comm::Message{1, vehicle::VehicleSnapshot{t, {p, v}, a}};
}

TEST(FaultPlan, PresetNamesRoundTrip) {
  const auto names = FaultPlan::preset_names();
  ASSERT_EQ(names.size(), 6u);
  for (const auto& name : names) {
    const auto plan = FaultPlan::preset(name);
    ASSERT_TRUE(plan.has_value()) << name;
    EXPECT_EQ(plan->name, name);
    plan->validate();
  }
  EXPECT_FALSE(FaultPlan::preset("no-such-fault").has_value());
}

TEST(FaultPlan, NonePresetIsPassThrough) {
  const auto plan = FaultPlan::none();
  EXPECT_FALSE(plan.any());
  EXPECT_FALSE(plan.channel.any());
  EXPECT_FALSE(plan.sensor.any());
}

TEST(FaultPlan, ActivePresetsReportAny) {
  EXPECT_TRUE(FaultPlan::delay_jitter().channel.any());
  EXPECT_TRUE(FaultPlan::reorder_duplicate().channel.any());
  EXPECT_TRUE(FaultPlan::corruption().channel.any());
  EXPECT_TRUE(FaultPlan::blackout().channel.any());
  EXPECT_TRUE(FaultPlan::sensor_freeze().sensor.any());
}

TEST(FaultPlan, ValidateRejectsBadValues) {
  ScopedContractMode mode(ContractMode::kThrow);
  const double nan = std::numeric_limits<double>::quiet_NaN();

  FaultPlan p;
  p.channel.corrupt_prob = 1.5;
  EXPECT_THROW(p.validate(), ContractViolation);

  p = FaultPlan{};
  p.channel.delay_jitter_max = nan;
  EXPECT_THROW(p.validate(), ContractViolation);

  p = FaultPlan{};
  p.channel.reorder_delay_min = 0.3;
  p.channel.reorder_delay_max = 0.1;  // inverted range
  EXPECT_THROW(p.validate(), ContractViolation);

  p = FaultPlan{};
  p.channel.blackouts = {{4.0, 2.0}};  // end < begin
  EXPECT_THROW(p.validate(), ContractViolation);

  p = FaultPlan{};
  p.sensor.dropout_prob = -0.1;
  EXPECT_THROW(p.validate(), ContractViolation);

  p = FaultPlan{};
  p.sensor.bias_drift_rate = nan;
  EXPECT_THROW(p.validate(), ContractViolation);
}

TEST(FaultPlan, FromFileParsesEveryField) {
  const std::string path = testing::TempDir() + "/fault_plan_test.ini";
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.good());
    out << "name = custom-mix\n"
        << "seed = 77\n"
        << "channel.delay_jitter_max = 0.2\n"
        << "channel.reorder_prob = 0.1\n"
        << "channel.duplicate_prob = 0.05\n"
        << "channel.corrupt_prob = 0.15\n"
        << "channel.corrupt_delta_p = 1.5\n"
        << "channel.stale_spoof_prob = 0.1\n"
        << "channel.stale_spoof_max = 0.3\n"
        << "channel.blackouts = 1:2,5:6.5\n"
        << "sensor.dropout_prob = 0.25\n"
        << "sensor.bias_drift_rate = 0.01\n"
        << "sensor.stuck = 3:4\n";
  }
  const FaultPlan p = FaultPlan::from_file(path);
  EXPECT_EQ(p.name, "custom-mix");
  EXPECT_EQ(p.seed, 77u);
  EXPECT_DOUBLE_EQ(p.channel.delay_jitter_max, 0.2);
  EXPECT_DOUBLE_EQ(p.channel.reorder_prob, 0.1);
  EXPECT_DOUBLE_EQ(p.channel.duplicate_prob, 0.05);
  EXPECT_DOUBLE_EQ(p.channel.corrupt_prob, 0.15);
  EXPECT_DOUBLE_EQ(p.channel.corrupt_delta_p, 1.5);
  EXPECT_DOUBLE_EQ(p.channel.stale_spoof_prob, 0.1);
  EXPECT_DOUBLE_EQ(p.channel.stale_spoof_max, 0.3);
  ASSERT_EQ(p.channel.blackouts.size(), 2u);
  EXPECT_DOUBLE_EQ(p.channel.blackouts[1].end, 6.5);
  EXPECT_DOUBLE_EQ(p.sensor.dropout_prob, 0.25);
  EXPECT_DOUBLE_EQ(p.sensor.bias_drift_rate, 0.01);
  ASSERT_EQ(p.sensor.stuck.size(), 1u);
  EXPECT_TRUE(p.any());
}

TEST(FaultPlan, FromFileRejectsMissingAndMalformed) {
  EXPECT_THROW(FaultPlan::from_file("/no/such/fault_plan.ini"),
               std::runtime_error);
  const std::string path = testing::TempDir() + "/fault_plan_bad.ini";
  {
    std::ofstream out(path);
    out << "channel.blackouts = 1-2\n";  // must be begin:end
  }
  EXPECT_THROW(FaultPlan::from_file(path), std::runtime_error);
}

TEST(FaultPlan, ToFileRoundTripsBitExactly) {
  // A plan whose doubles need all 17 significant digits to survive a
  // text round trip.
  FaultPlan p = FaultPlan::corruption();
  p.name = "round-trip";
  p.seed = 0xDEADBEEFu;
  p.channel.delay_jitter_max = 0.1 + 0.2;  // 0.30000000000000004
  p.channel.reorder_prob = 1.0 / 3.0;
  p.channel.duplicate_prob = 0.05;
  p.channel.duplicate_lag_max = 2.0 / 7.0;
  p.channel.blackouts = {{1.0 / 3.0, 2.0 / 3.0}, {5.0, 6.123456789012345}};
  p.sensor.dropout_prob = 0.1;
  p.sensor.bias_drift_rate = -1.0 / 81.0;
  p.sensor.stuck = {{3.3, 4.4}};

  const std::string path = testing::TempDir() + "/fault_plan_rt.ini";
  p.to_file(path);
  const FaultPlan q = FaultPlan::from_file(path);
  EXPECT_EQ(q.name, p.name);
  EXPECT_EQ(q.seed, p.seed);
  EXPECT_EQ(q.channel.delay_jitter_max, p.channel.delay_jitter_max);
  EXPECT_EQ(q.channel.reorder_prob, p.channel.reorder_prob);
  EXPECT_EQ(q.channel.reorder_delay_min, p.channel.reorder_delay_min);
  EXPECT_EQ(q.channel.reorder_delay_max, p.channel.reorder_delay_max);
  EXPECT_EQ(q.channel.duplicate_lag_max, p.channel.duplicate_lag_max);
  EXPECT_EQ(q.channel.corrupt_delta_p, p.channel.corrupt_delta_p);
  EXPECT_EQ(q.channel.stale_spoof_max, p.channel.stale_spoof_max);
  ASSERT_EQ(q.channel.blackouts.size(), 2u);
  EXPECT_EQ(q.channel.blackouts[1].end, p.channel.blackouts[1].end);
  EXPECT_EQ(q.sensor.bias_drift_rate, p.sensor.bias_drift_rate);
  ASSERT_EQ(q.sensor.stuck.size(), 1u);
  // The strongest form: serializing the reparsed plan reproduces the
  // byte stream, so to_file/from_file is a fixed point.
  EXPECT_EQ(q.to_ini(), p.to_ini());
}

TEST(FaultPlan, ToIniOmitsEmptyWindowListsAndValidatesFirst) {
  const std::string ini = FaultPlan::none().to_ini();
  EXPECT_EQ(ini.find("blackouts"), std::string::npos);
  EXPECT_EQ(ini.find("stuck"), std::string::npos);
  EXPECT_NE(ini.find("[channel]"), std::string::npos);
  EXPECT_NE(ini.find("[sensor]"), std::string::npos);

  util::ScopedContractMode mode(util::ContractMode::kThrow);
  FaultPlan bad;
  bad.channel.corrupt_prob = 1.5;  // invalid probability
  EXPECT_THROW(bad.to_ini(), util::ContractViolation);
}

TEST(FaultPlan, ToFileThrowsOnUnwritablePath) {
  EXPECT_THROW(FaultPlan::none().to_file("/no/such/dir/plan.ini"),
               std::runtime_error);
}

TEST(FaultPlan, EveryPresetRoundTripsThroughFile) {
  for (const auto& name : FaultPlan::preset_names()) {
    const FaultPlan p = *FaultPlan::preset(name);
    const std::string path =
        testing::TempDir() + "/fault_plan_" + name + ".ini";
    p.to_file(path);
    const FaultPlan q = FaultPlan::from_file(path);
    EXPECT_EQ(q.to_ini(), p.to_ini()) << name;
  }
}

TEST(FaultPlan, FromFileRejectsUnknownKeys) {
  // A typo'd knob must fail loudly, not silently run the unfaulted
  // baseline.
  const std::string path = testing::TempDir() + "/fault_plan_typo.ini";
  {
    std::ofstream out(path);
    out << "channel.corupt_prob = 0.4\n";  // sic: missing the second 'r'
  }
  EXPECT_THROW(FaultPlan::from_file(path), std::runtime_error);
}

/// Drives a channel for `steps` control steps and returns the delivered
/// payload timestamps in delivery order.
template <typename Ch>
std::vector<double> drive(Ch& ch, util::Rng& rng, int steps = 200,
                          double dt = 0.05) {
  std::vector<double> stamps;
  for (int i = 0; i <= steps; ++i) {
    const double t = i * dt;
    ch.offer(make_msg(t, t * 10.0), rng);
    for (const auto& m : ch.collect(t)) stamps.push_back(m.stamp());
  }
  return stamps;
}

TEST(FaultyChannel, PassThroughIsBitIdenticalToPlainChannel) {
  const auto cfg = comm::CommConfig::delayed(0.3, 0.25, 0.1);
  comm::Channel plain(cfg);
  FaultyChannel nofault(cfg);
  FaultyChannel disabled_model(cfg, ChannelFaultModel{}, 99);
  EXPECT_FALSE(nofault.faulty());
  EXPECT_FALSE(disabled_model.faulty());

  util::Rng r1(7), r2(7), r3(7);
  const auto a = drive(plain, r1);
  const auto b = drive(nofault, r2);
  const auto c = drive(disabled_model, r3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  // The episode RNG advanced identically: the next draw agrees.
  const double next = r1.uniform(0.0, 1.0);
  EXPECT_EQ(next, r2.uniform(0.0, 1.0));
  EXPECT_EQ(next, r3.uniform(0.0, 1.0));
}

TEST(FaultyChannel, ActiveFaultsNeverTouchEpisodeRng) {
  const auto cfg = comm::CommConfig::delayed(0.3, 0.25, 0.1);
  comm::Channel plain(cfg);
  FaultyChannel faulty(cfg, FaultPlan::corruption().channel, 1234);
  ASSERT_TRUE(faulty.faulty());

  util::Rng r1(7), r2(7);
  drive(plain, r1);
  drive(faulty, r2);
  // Fault draws come exclusively from the decorator's own RNG, so the
  // episode RNG is exactly where the undecorated run left it (paired
  // workloads).
  EXPECT_EQ(r1.uniform(0.0, 1.0), r2.uniform(0.0, 1.0));
  EXPECT_EQ(plain.sent_count(), faulty.sent_count());
  EXPECT_EQ(plain.dropped_count(), faulty.dropped_count());
}

TEST(FaultyChannel, DeterministicGivenFaultSeed) {
  const auto model = FaultPlan::reorder_duplicate().channel;
  const auto cfg = comm::CommConfig::delayed(0.2, 0.25, 0.1);
  auto run = [&](std::uint64_t fault_seed) {
    FaultyChannel ch(cfg, model, fault_seed);
    util::Rng rng(11);
    return drive(ch, rng);
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(FaultyChannel, BlackoutWindowDiscardsAdmittedMessages) {
  ChannelFaultModel model;
  model.blackouts = {{1.0, 2.0}};
  FaultyChannel ch(comm::CommConfig::no_disturbance(0.1), model, 3);
  util::Rng rng(1);
  const auto stamps = drive(ch, rng, 60, 0.05);  // t in [0, 3]
  for (const double s : stamps) {
    EXPECT_FALSE(s >= 1.0 && s < 2.0) << "delivered from blackout: " << s;
  }
  EXPECT_EQ(ch.stats().blackout_dropped, 10u);  // 10 tx instants in [1, 2)
}

TEST(FaultyChannel, DuplicationDeliversTwice) {
  ChannelFaultModel model;
  model.duplicate_prob = 1.0;
  model.duplicate_lag_max = 0.05;
  FaultyChannel ch(comm::CommConfig::no_disturbance(0.1), model, 3);
  util::Rng rng(1);
  auto stamps = drive(ch, rng, 100, 0.05);
  // The final duplicate's lag can outlive the drive loop: drain it.
  for (const auto& m : ch.collect(1e9)) stamps.push_back(m.stamp());
  EXPECT_EQ(stamps.size(), 2 * ch.sent_count());
  EXPECT_EQ(ch.stats().duplicated, ch.sent_count());
}

TEST(FaultyChannel, CorruptionPerturbsWithinDeltas) {
  ChannelFaultModel model;
  model.corrupt_prob = 1.0;
  model.corrupt_delta_p = 2.0;
  model.corrupt_delta_v = 1.0;
  model.corrupt_delta_a = 0.5;
  FaultyChannel ch(comm::CommConfig::no_disturbance(0.1), model, 9);
  util::Rng rng(1);
  std::size_t checked = 0;
  for (int i = 0; i <= 100; ++i) {
    const double t = i * 0.05;
    ch.offer(make_msg(t, 1.0, 5.0, 0.0), rng);
    for (const auto& m : ch.collect(t)) {
      EXPECT_NEAR(m.data.state.p, 1.0, 2.0);
      EXPECT_NEAR(m.data.state.v, 5.0, 1.0);
      EXPECT_NEAR(m.data.a, 0.0, 0.5);
      // A perturbation of exactly zero has probability zero.
      EXPECT_NE(m.data.state.p, 1.0);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
  EXPECT_EQ(ch.stats().corrupted, checked);
}

TEST(FaultyChannel, StaleSpoofBackdatesTimestampOnly) {
  ChannelFaultModel model;
  model.stale_spoof_prob = 1.0;
  model.stale_spoof_max = 0.5;
  FaultyChannel ch(comm::CommConfig::no_disturbance(0.1), model, 9);
  util::Rng rng(1);
  ch.offer(make_msg(0.0), rng);
  // Spoofing never postpones delivery: the message still arrives now.
  const auto got = ch.collect(0.0);
  ASSERT_GE(got.size(), 1u);
  EXPECT_LE(got[0].stamp(), 0.0);
  EXPECT_GE(got[0].stamp(), -0.5);
}

TEST(FaultyChannel, JitterAndReorderDelayDelivery) {
  ChannelFaultModel model;
  model.delay_jitter_max = 0.3;
  FaultyChannel ch(comm::CommConfig::no_disturbance(0.1), model, 5);
  util::Rng rng(1);
  ch.offer(make_msg(0.0), rng);
  EXPECT_TRUE(ch.collect(0.0).empty());  // jitter > 0 almost surely
  EXPECT_EQ(ch.collect(0.4).size(), 1u);
  EXPECT_EQ(ch.stats().jittered, 1u);

  ChannelFaultModel reorder;
  reorder.reorder_prob = 1.0;
  reorder.reorder_delay_min = 0.35;
  reorder.reorder_delay_max = 0.45;
  FaultyChannel ch2(comm::CommConfig::no_disturbance(0.1), reorder, 5);
  util::Rng rng2(1);
  ch2.offer(make_msg(0.0), rng2);
  ch2.offer(make_msg(0.1), rng2);
  ch2.offer(make_msg(0.2), rng2);
  const auto got = ch2.collect(1.0);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(ch2.stats().reordered, 3u);
}

TEST(FaultySensor, PassThroughIsBitIdenticalToPlainSensor) {
  const auto cfg = sensing::SensorConfig::uniform(1.0, 0.1);
  sensing::Sensor plain(cfg);
  FaultySensor nofault(cfg);
  util::Rng r1(3), r2(3);
  for (int i = 0; i <= 100; ++i) {
    const double t = i * 0.05;
    const vehicle::VehicleSnapshot truth{t, {t * 8.0, 8.0}, 0.5};
    const auto a = plain.sense(truth, r1);
    const auto b = nofault.sense(truth, r2);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a) {
      EXPECT_EQ(a->t, b->t);
      EXPECT_EQ(a->p, b->p);
      EXPECT_EQ(a->v, b->v);
      EXPECT_EQ(a->a, b->a);
    }
  }
  EXPECT_EQ(r1.uniform(0.0, 1.0), r2.uniform(0.0, 1.0));
}

TEST(FaultySensor, DropoutSuppressesReadingsButNotSchedule) {
  SensorFaultModel model;
  model.dropout_prob = 1.0;
  const auto cfg = sensing::SensorConfig::uniform(1.0, 0.1);
  FaultySensor sensor(cfg, model, 8);
  sensing::Sensor plain(cfg);
  util::Rng r1(3), r2(3);
  for (int i = 0; i <= 100; ++i) {
    const double t = i * 0.05;
    const vehicle::VehicleSnapshot truth{t, {0.0, 8.0}, 0.0};
    EXPECT_FALSE(sensor.sense(truth, r1).has_value());
    plain.sense(truth, r2);
  }
  EXPECT_EQ(sensor.stats().dropped, 51u);  // one per sensing instant
  // The inner schedule and noise draws ran unchanged.
  EXPECT_EQ(r1.uniform(0.0, 1.0), r2.uniform(0.0, 1.0));
}

TEST(FaultySensor, StuckWindowRepeatsLastValuesWithAdvancingTime) {
  SensorFaultModel model;
  model.stuck = {{0.55, 1.05}};
  FaultySensor sensor(sensing::SensorConfig::uniform(0.0, 0.1), model, 8);
  util::Rng rng(3);
  std::optional<sensing::SensorReading> before_window;
  double last_t = -1.0;
  for (int i = 0; i <= 20; ++i) {
    const double t = i * 0.05;
    const vehicle::VehicleSnapshot truth{t, {t * 10.0, 10.0}, 0.0};
    const auto r = sensor.sense(truth, rng);
    if (!r) continue;
    EXPECT_GT(r->t, last_t);  // time stays monotone through the window
    last_t = r->t;
    if (t < 0.55) {
      before_window = r;
    } else if (t < 1.05) {
      ASSERT_TRUE(before_window.has_value());
      EXPECT_EQ(r->p, before_window->p);  // frozen payload
      EXPECT_EQ(r->v, before_window->v);
      EXPECT_EQ(r->t, t);  // fresh timestamp
    }
  }
  EXPECT_EQ(sensor.stats().stuck, 5u);  // sensing instants 0.6 .. 1.0
}

TEST(FaultySensor, BiasDriftRampsWithSimulationTime) {
  SensorFaultModel model;
  model.bias_drift_rate = 0.5;
  FaultySensor sensor(sensing::SensorConfig::uniform(0.0, 0.1), model, 8);
  util::Rng rng(3);
  for (int i = 0; i <= 40; ++i) {
    const double t = i * 0.05;
    const vehicle::VehicleSnapshot truth{t, {7.0, 10.0}, 0.0};
    if (const auto r = sensor.sense(truth, rng)) {
      EXPECT_NEAR(r->p, 7.0 + 0.5 * t, 1e-12);
    }
  }
  EXPECT_EQ(sensor.stats().biased, 21u);
}

}  // namespace
}  // namespace cvsafe::fault
