// The adversarial worst-case search end to end: deterministic across
// runs and thread counts, strictly better (lower min_eta) than the best
// preset under the same paired evaluation protocol, safe (zero
// collisions) on every candidate, and byte-identical to the committed
// golden at the CI budget.
//
// Regenerate the golden (only when a behavior change is intended) with:
//   CVSAFE_UPDATE_GOLDEN=1 ./adv_search_test

#include "cvsafe/adv/search.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "cvsafe/util/contracts.hpp"

namespace cvsafe::adv {
namespace {

using util::ContractMode;
using util::ContractViolation;
using util::ScopedContractMode;

TEST(SearchConfig, ValidateRejectsBadShapes) {
  ScopedContractMode mode(ContractMode::kThrow);
  SearchConfig c = SearchConfig::smoke();
  c.scenario = "no-such-scenario";
  EXPECT_THROW(c.validate(), ContractViolation);
  c = SearchConfig::smoke();
  c.optimizer = "anneal";
  EXPECT_THROW(c.validate(), ContractViolation);
  c = SearchConfig::smoke();
  c.iterations = 0;
  EXPECT_THROW(c.validate(), ContractViolation);
  c = SearchConfig::smoke();
  c.episodes_per_eval = 0;
  EXPECT_THROW(c.validate(), ContractViolation);
  c = SearchConfig::smoke();
  c.stealth_threshold = 1.5;
  EXPECT_THROW(c.validate(), ContractViolation);
}

TEST(AdvSearch, SmokeRunsAndHoldsTheInvariant) {
  auto config = SearchConfig::smoke();
  config.threads = 1;
  const SearchResult result = run_search(config);
  EXPECT_EQ(result.trace.candidates.size(), config.iterations * 2);
  EXPECT_TRUE(result.invariant_ok());
  EXPECT_EQ(result.violations(), 0u);
  for (const CandidateRecord& rec : result.trace.candidates) {
    EXPECT_EQ(rec.cell.episodes, config.episodes_per_eval);
    EXPECT_EQ(rec.params.size(), ParamSpace::kDim);
    if (rec.admissible) {
      EXPECT_EQ(rec.score, rec.cell.min_eta);
    } else {
      EXPECT_GE(rec.score, 1e3);  // stealth penalty region
    }
  }
  ASSERT_NE(result.worst(), nullptr);
  EXPECT_TRUE(result.worst()->admissible);
  EXPECT_LE(result.offenders.size(), config.top_k);
}

TEST(AdvSearch, OffendersAreRankedWorstFirst) {
  auto config = SearchConfig::smoke();
  config.iterations = 4;
  config.top_k = 8;
  config.threads = 1;
  const SearchResult result = run_search(config);
  ASSERT_GE(result.offenders.size(), 2u);
  for (std::size_t r = 1; r < result.offenders.size(); ++r) {
    EXPECT_LE(result.trace.candidates[result.offenders[r - 1]].cell.min_eta,
              result.trace.candidates[result.offenders[r]].cell.min_eta);
  }
}

TEST(AdvSearch, TraceCsvIsByteIdenticalAcrossRunsAndThreads) {
  auto config = SearchConfig::smoke();
  config.threads = 1;
  const std::string csv = search_csv(run_search(config));
  EXPECT_EQ(csv, search_csv(run_search(config)));
  config.threads = 2;
  EXPECT_EQ(csv, search_csv(run_search(config)));
}

TEST(AdvSearch, OffenderTraceIsDeterministic) {
  auto config = SearchConfig::smoke();
  config.threads = 1;
  const SearchResult result = run_search(config);
  ASSERT_FALSE(result.offenders.empty());
  std::ostringstream a, b;
  trace_offender(result, 0, a);
  trace_offender(result, 0, b);
  EXPECT_FALSE(a.str().empty());
  EXPECT_EQ(a.str(), b.str());
  ScopedContractMode mode(ContractMode::kThrow);
  std::ostringstream c;
  EXPECT_THROW(trace_offender(result, result.offenders.size(), c),
               ContractViolation);
}

TEST(AdvSearch, CsvHasOneRowPerCandidatePlusHeader) {
  auto config = SearchConfig::smoke();
  config.threads = 1;
  const SearchResult result = run_search(config);
  std::istringstream csv(search_csv(result));
  std::string line;
  ASSERT_TRUE(std::getline(csv, line));
  EXPECT_EQ(line.substr(0, 19), "iteration,candidate");
  std::size_t rows = 0;
  while (std::getline(csv, line)) ++rows;
  EXPECT_EQ(rows, result.trace.candidates.size());
}

// The CI budget against the committed golden — the exact byte stream the
// .github adversarial job reproduces and compares — plus the acceptance
// bar: the search must strictly beat every preset's min_eta under the
// SAME paired evaluation protocol (same eval seed base, same episode
// count), and no discovered worst case may enter the unsafe set.
TEST(AdvSearch, CiBudgetBeatsPresetsAndMatchesCommittedGolden) {
  const SearchConfig config = SearchConfig::ci();
  const SearchResult result = run_search(config);
  EXPECT_TRUE(result.invariant_ok());
  ASSERT_NE(result.worst(), nullptr);

  // Paired preset baseline: best (lowest) min_eta any preset condition
  // reaches on the search's own evaluation protocol.
  double best_preset = std::numeric_limits<double>::infinity();
  for (const char* name :
       {"delay-jitter", "reorder-duplicate", "corruption", "blackout",
        "burst"}) {
    const auto cond = sim::FaultCondition::preset(name);
    const auto episodes = sim::run_campaign_cell(
        config.scenario, cond, config.episodes_per_eval, config.eval_seed,
        config.threads);
    const auto cell = sim::aggregate_cell(name, config.scenario, episodes);
    best_preset = std::min(best_preset, cell.min_eta);
  }
  EXPECT_LT(result.worst()->cell.min_eta, best_preset)
      << "the search must find a strictly worse case than any preset";
  EXPECT_GE(result.worst()->cell.min_eta, 0.0)
      << "eta(kappa_c) >= 0 must hold on the discovered worst case";

  const std::string csv = search_csv(result);
  const std::string path =
      std::string(CVSAFE_GOLDEN_DIR) + "/adv_attack_ci.csv";
  if (std::getenv("CVSAFE_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << csv;
    GTEST_SKIP() << "golden regenerated: " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " — regenerate with CVSAFE_UPDATE_GOLDEN=1";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(csv, golden.str())
      << "attack SearchTrace diverged from the committed golden";
}

}  // namespace
}  // namespace cvsafe::adv
