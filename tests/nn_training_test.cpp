// Training loop, optimizers, and serialization round trips.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "cvsafe/nn/optimizer.hpp"
#include "cvsafe/nn/serialize.hpp"
#include "cvsafe/nn/trainer.hpp"

namespace cvsafe::nn {
namespace {

/// A smooth 2D -> 1D target function for regression tests.
Dataset make_regression_data(std::size_t n, util::Rng& rng) {
  Dataset d{Matrix(n, 2), Matrix(n, 1)};
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(-1, 1);
    const double b = rng.uniform(-1, 1);
    d.inputs(i, 0) = a;
    d.inputs(i, 1) = b;
    d.targets(i, 0) = std::sin(2.0 * a) + 0.5 * b;
  }
  return d;
}

TEST(Dataset, SplitSizes) {
  util::Rng rng(1);
  const Dataset d = make_regression_data(100, rng);
  const auto [train, val] = d.split(0.2);
  EXPECT_EQ(train.size(), 80u);
  EXPECT_EQ(val.size(), 20u);
  EXPECT_EQ(train.inputs.cols(), 2u);
  // Rows must be preserved (no shuffling in split).
  EXPECT_EQ(train.inputs(0, 0), d.inputs(0, 0));
  EXPECT_EQ(val.inputs(0, 0), d.inputs(80, 0));
}

TEST(Sgd, DecreasesQuadraticLoss) {
  // One parameter, loss (w - 3)^2: gradient descent must converge to 3.
  Matrix w(1, 1, {0.0});
  Sgd opt(0.1);
  for (int i = 0; i < 200; ++i) {
    const Matrix grad(1, 1, {2.0 * (w(0, 0) - 3.0)});
    opt.update(0, w, grad);
    opt.end_step();
  }
  EXPECT_NEAR(w(0, 0), 3.0, 1e-6);
}

TEST(Sgd, MomentumAcceleratesConvergence) {
  Matrix w1(1, 1, {0.0}), w2(1, 1, {0.0});
  Sgd plain(0.01, 0.0), momentum(0.01, 0.9);
  for (int i = 0; i < 50; ++i) {
    plain.update(0, w1, Matrix(1, 1, {2.0 * (w1(0, 0) - 3.0)}));
    momentum.update(0, w2, Matrix(1, 1, {2.0 * (w2(0, 0) - 3.0)}));
  }
  EXPECT_GT(w2(0, 0), w1(0, 0));  // momentum got further toward 3
}

TEST(Adam, ConvergesOnQuadratic) {
  Matrix w(1, 1, {-5.0});
  Adam opt(0.1);
  for (int i = 0; i < 500; ++i) {
    opt.update(0, w, Matrix(1, 1, {2.0 * (w(0, 0) - 3.0)}));
    opt.end_step();
  }
  EXPECT_NEAR(w(0, 0), 3.0, 1e-3);
}

TEST(Train, LossDecreases) {
  util::Rng rng(2);
  const Dataset data = make_regression_data(800, rng);
  Mlp net(MlpSpec{{2, 16, 1}, Activation::kTanh, Activation::kIdentity},
          rng);
  Adam opt(3e-3);
  TrainConfig config;
  config.epochs = 40;
  config.batch_size = 32;
  const TrainResult result = train(net, data, opt, config, rng);
  ASSERT_EQ(result.epoch_losses.size(), 40u);
  EXPECT_LT(result.final_loss, result.epoch_losses.front() * 0.2);
  EXPECT_LT(result.final_loss, 0.02);
}

TEST(Train, GeneralizesToHeldOutData) {
  util::Rng rng(3);
  const Dataset data = make_regression_data(1500, rng);
  const auto [train_set, val_set] = data.split(0.2);
  Mlp net(MlpSpec{{2, 24, 24, 1}, Activation::kTanh, Activation::kIdentity},
          rng);
  Adam opt(3e-3);
  TrainConfig config;
  config.epochs = 60;
  config.batch_size = 64;
  train(net, train_set, opt, config, rng);
  EXPECT_LT(evaluate(net, val_set), 0.02);
}

TEST(Train, HuberLossAlsoConverges) {
  util::Rng rng(4);
  const Dataset data = make_regression_data(600, rng);
  Mlp net(MlpSpec{{2, 16, 1}, Activation::kTanh, Activation::kIdentity},
          rng);
  Adam opt(3e-3);
  TrainConfig config;
  config.epochs = 40;
  config.batch_size = 32;
  config.huber_delta = 1.0;
  const auto result = train(net, data, opt, config, rng);
  EXPECT_LT(result.final_loss, result.epoch_losses.front() * 0.25);
}

TEST(Train, DeterministicGivenSeed) {
  auto run = [] {
    util::Rng rng(5);
    const Dataset data = make_regression_data(200, rng);
    Mlp net(MlpSpec{{2, 8, 1}, Activation::kTanh, Activation::kIdentity},
            rng);
    Adam opt(1e-2);
    TrainConfig config;
    config.epochs = 10;
    config.batch_size = 32;
    train(net, data, opt, config, rng);
    return net.predict({0.3, -0.4})[0];
  };
  EXPECT_EQ(run(), run());
}

TEST(Train, EpochCallbackInvoked) {
  util::Rng rng(6);
  const Dataset data = make_regression_data(100, rng);
  Mlp net(MlpSpec{{2, 4, 1}, Activation::kTanh, Activation::kIdentity}, rng);
  Sgd opt(1e-2);
  TrainConfig config;
  config.epochs = 5;
  std::size_t calls = 0;
  config.on_epoch = [&calls](std::size_t, double) { ++calls; };
  train(net, data, opt, config, rng);
  EXPECT_EQ(calls, 5u);
}

TEST(Serialize, RoundTripIsBitExact) {
  util::Rng rng(7);
  Mlp net(MlpSpec{{4, 12, 5, 1}, Activation::kTanh, Activation::kIdentity},
          rng);
  std::stringstream ss;
  save_mlp(net, ss);
  const Mlp loaded = load_mlp(ss);
  ASSERT_EQ(loaded.layer_count(), net.layer_count());
  for (double a : {-0.7, 0.0, 0.3, 1.2}) {
    const std::vector<double> x{a, -a, 0.5 * a, 1.0};
    EXPECT_EQ(net.predict(x)[0], loaded.predict(x)[0]);
  }
}

TEST(Serialize, PreservesActivations) {
  util::Rng rng(8);
  Mlp net(MlpSpec{{2, 3, 1}, Activation::kRelu, Activation::kSigmoid}, rng);
  std::stringstream ss;
  save_mlp(net, ss);
  const Mlp loaded = load_mlp(ss);
  EXPECT_EQ(loaded.layer(0).activation(), Activation::kRelu);
  EXPECT_EQ(loaded.layer(1).activation(), Activation::kSigmoid);
}

TEST(Serialize, RejectsGarbage) {
  std::stringstream ss("not-a-model 1\n");
  EXPECT_THROW(load_mlp(ss), std::runtime_error);
  std::stringstream truncated("cvsafe-mlp 1\n1\n2 3 tanh\n0.5");
  EXPECT_THROW(load_mlp(truncated), std::runtime_error);
}

TEST(Serialize, FileRoundTrip) {
  util::Rng rng(9);
  Mlp net(MlpSpec{{2, 4, 1}, Activation::kTanh, Activation::kIdentity}, rng);
  const std::string path = "/tmp/cvsafe_serialize_test.mlp";
  ASSERT_TRUE(save_mlp_file(net, path));
  const Mlp loaded = load_mlp_file(path);
  EXPECT_EQ(net.predict({0.1, 0.2})[0], loaded.predict({0.1, 0.2})[0]);
  std::remove(path.c_str());
  EXPECT_THROW(load_mlp_file("/nonexistent/dir/x.mlp"), std::runtime_error);
}

}  // namespace
}  // namespace cvsafe::nn
