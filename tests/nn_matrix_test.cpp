#include "cvsafe/nn/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "cvsafe/util/rng.hpp"

namespace cvsafe::nn {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, util::Rng& rng) {
  Matrix m(r, c);
  for (auto& x : m.data()) x = rng.uniform(-2, 2);
  return m;
}

void expect_near(const Matrix& a, const Matrix& b, double tol = 1e-12) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a.data()[i], b.data()[i], tol);
  }
}

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  m(1, 2) = 5.0;
  EXPECT_EQ(m(1, 2), 5.0);
  EXPECT_EQ(m(0, 0), 0.0);
}

TEST(Matrix, RowVectorAndIdentity) {
  const Matrix r = Matrix::row_vector({1.0, 2.0, 3.0});
  EXPECT_EQ(r.rows(), 1u);
  EXPECT_EQ(r.cols(), 3u);
  const Matrix i = Matrix::identity(3);
  EXPECT_EQ(i(0, 0), 1.0);
  EXPECT_EQ(i(0, 1), 0.0);
}

TEST(Matrix, MatmulKnownValues) {
  const Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  const Matrix c = a.matmul(b);
  expect_near(c, Matrix(2, 2, {58, 64, 139, 154}));
}

TEST(Matrix, MatmulIdentity) {
  util::Rng rng(1);
  const Matrix a = random_matrix(4, 4, rng);
  expect_near(a.matmul(Matrix::identity(4)), a);
  expect_near(Matrix::identity(4).matmul(a), a);
}

TEST(Matrix, MatmulTransposedEqualsExplicit) {
  util::Rng rng(2);
  const Matrix a = random_matrix(5, 7, rng);
  const Matrix b = random_matrix(4, 7, rng);
  expect_near(a.matmul_transposed(b), a.matmul(b.transpose()), 1e-12);
}

TEST(Matrix, TransposedMatmulEqualsExplicit) {
  util::Rng rng(3);
  const Matrix a = random_matrix(6, 3, rng);
  const Matrix b = random_matrix(6, 4, rng);
  expect_near(a.transposed_matmul(b), a.transpose().matmul(b), 1e-12);
}

TEST(Matrix, AddSubScale) {
  const Matrix a(1, 3, {1, 2, 3});
  const Matrix b(1, 3, {4, 5, 6});
  expect_near(a + b, Matrix(1, 3, {5, 7, 9}));
  expect_near(b - a, Matrix(1, 3, {3, 3, 3}));
  expect_near(a * 2.0, Matrix(1, 3, {2, 4, 6}));
}

TEST(Matrix, RowBroadcastAndColumnSums) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  m.add_row_broadcast(Matrix::row_vector({10, 20, 30}));
  expect_near(m, Matrix(2, 3, {11, 22, 33, 14, 25, 36}));
  expect_near(m.column_sums(), Matrix::row_vector({25, 47, 69}));
}

TEST(Matrix, Hadamard) {
  const Matrix a(1, 3, {1, 2, 3});
  const Matrix b(1, 3, {4, 5, 6});
  expect_near(a.hadamard(b), Matrix(1, 3, {4, 10, 18}));
}

TEST(Matrix, MaxAbs) {
  const Matrix a(1, 3, {1, -7, 3});
  EXPECT_EQ(a.max_abs(), 7.0);
  EXPECT_EQ(Matrix().max_abs(), 0.0);
}

TEST(Matrix, GlorotWithinLimit) {
  util::Rng rng(4);
  const Matrix m = Matrix::glorot(16, 8, rng);
  const double limit = std::sqrt(6.0 / (16 + 8));
  EXPECT_LE(m.max_abs(), limit);
  EXPECT_GT(m.max_abs(), 0.0);
}

}  // namespace
}  // namespace cvsafe::nn
