#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "cvsafe/obs/flight_recorder.hpp"
#include "cvsafe/obs/metrics.hpp"
#include "cvsafe/util/contracts.hpp"

/// \file obs_flight_recorder_test.cpp
/// Unit tests for the flight-recorder ring: capacity/wraparound/causal
/// order, trigger evaluation, the JSONL dump format, the collector's
/// index-order restore — plus the metrics-registry satellites: the
/// histogram bounds-mismatch contract and shard-merge determinism of
/// dyadic-valued histograms.

namespace cvsafe {
namespace {

using obs::FlightDump;
using obs::FlightDumpCollector;
using obs::FlightRecorderConfig;
using obs::GateRejectReason;
using obs::RingEvent;
using obs::RingEventKind;
using obs::RingRecorder;
using util::ContractMode;
using util::ContractViolation;
using util::ScopedContractMode;

// ---------------------------------------------------------------------------
// Ring mechanics

TEST(RingRecorder, UnarmedRecordsNothing) {
  RingRecorder ring;
  EXPECT_FALSE(ring.armed());
  EXPECT_FALSE(obs::ring_recording(&ring));
  EXPECT_FALSE(obs::ring_recording(nullptr));
}

TEST(RingRecorder, ArmedRecordsInCausalOrder) {
  FlightRecorderConfig config;
  config.ring_capacity = 8;
  RingRecorder ring(config);
  ASSERT_TRUE(obs::ring_recording(&ring));

  ring.begin_step(3);
  ring.message_accept(/*sender=*/1, /*stamp=*/0.5);
  ring.begin_step(4);
  ring.eta_sample(0.25);
  ring.gate_verdict(/*emergency=*/true, /*slack=*/-0.1);

  ASSERT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.overwritten(), 0u);
  EXPECT_EQ(ring.event(0).step, 3u);
  EXPECT_EQ(ring.event(0).kind,
            static_cast<std::uint8_t>(RingEventKind::kMessageAccept));
  EXPECT_EQ(ring.event(0).aux, 1u);
  EXPECT_EQ(ring.event(1).step, 4u);
  EXPECT_DOUBLE_EQ(ring.event(1).value, 0.25);
  EXPECT_EQ(ring.event(2).code, 1u);  // emergency verdict
  EXPECT_TRUE(ring.saw_emergency());
}

TEST(RingRecorder, WraparoundKeepsCausalTailAndCountsEvictions) {
  FlightRecorderConfig config;
  config.ring_capacity = 4;
  RingRecorder ring(config);
  for (std::uint32_t i = 0; i < 10; ++i) {
    ring.begin_step(i);
    ring.eta_sample(static_cast<double>(i));
  }
  ASSERT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.overwritten(), 6u);
  // Oldest retained is step 6, newest is step 9.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ring.event(i).step, 6u + i);
    EXPECT_DOUBLE_EQ(ring.event(i).value, 6.0 + static_cast<double>(i));
  }
  const std::vector<RingEvent> snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().step, 6u);
  EXPECT_EQ(snap.back().step, 9u);
}

TEST(RingRecorder, ResetClearsEpisodeState) {
  RingRecorder ring{FlightRecorderConfig{}};
  ring.begin_step(1);
  ring.message_reject(2, GateRejectReason::kStale, 0.1);
  ring.gate_verdict(true, -1.0);
  EXPECT_EQ(ring.rejections(), 1u);
  EXPECT_TRUE(ring.saw_emergency());
  ring.reset();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.rejections(), 0u);
  EXPECT_FALSE(ring.saw_emergency());
  EXPECT_TRUE(ring.armed()) << "reset re-arms the same storage";
}

TEST(RingRecorder, TriggerMaskCoversEveryReason) {
  FlightRecorderConfig config;
  config.eta_threshold = 0.05;
  config.rejection_burst = 2;
  RingRecorder ring(config);

  EXPECT_EQ(ring.triggers(/*eta=*/1.0, /*collided=*/false), 0u);
  EXPECT_EQ(ring.triggers(/*eta=*/0.01, /*collided=*/false),
            obs::kTriggerEta);
  EXPECT_EQ(ring.triggers(/*eta=*/1.0, /*collided=*/true),
            obs::kTriggerUnsafe);

  ring.gate_verdict(true, -0.5);
  EXPECT_EQ(ring.triggers(1.0, false), obs::kTriggerEmergency);

  ring.message_reject(1, GateRejectReason::kImplausible, 0.0);
  EXPECT_EQ(ring.triggers(1.0, false), obs::kTriggerEmergency)
      << "one rejection is below the burst threshold";
  ring.message_reject(1, GateRejectReason::kImplausible, 0.1);
  EXPECT_EQ(ring.triggers(0.01, true),
            obs::kTriggerEta | obs::kTriggerEmergency | obs::kTriggerUnsafe |
                obs::kTriggerRejectionBurst);
}

TEST(RingRecorder, BurstTriggerDisabledByZero) {
  FlightRecorderConfig config;
  config.rejection_burst = 0;
  RingRecorder ring(config);
  ring.message_reject(1, GateRejectReason::kStale, 0.0);
  EXPECT_EQ(ring.triggers(1.0, false), 0u);
}

// ---------------------------------------------------------------------------
// Dump serialization

FlightDump make_dump(std::size_t episode) {
  FlightDump dump;
  dump.episode = episode;
  dump.seed = 42 + episode;
  dump.triggers = obs::kTriggerEta | obs::kTriggerRejectionBurst;
  dump.eta = 0.015625;  // dyadic: %.17g prints it exactly
  dump.collided = false;
  dump.rejections = 9;
  dump.overwritten = 2;
  RingEvent reject;
  reject.step = 7;
  reject.kind = static_cast<std::uint8_t>(RingEventKind::kMessageReject);
  reject.code = static_cast<std::uint8_t>(GateRejectReason::kStale);
  reject.aux = 3;
  reject.value = 0.75;
  dump.events.push_back(reject);
  RingEvent ladder;
  ladder.step = 8;
  ladder.kind = static_cast<std::uint8_t>(RingEventKind::kLadderTransition);
  ladder.code = 2;
  ladder.aux = 0;
  ladder.value = 8.0;
  dump.events.push_back(ladder);
  return dump;
}

TEST(FlightDumpJsonl, HeaderAndEventLines) {
  std::ostringstream os;
  obs::write_flight_dump_jsonl(os, make_dump(5), "left-turn", "corruption");
  const std::string text = os.str();
  EXPECT_NE(text.find("{\"flight\":{\"episode\":5,\"seed\":47,"
                      "\"scenario\":\"left-turn\",\"fault\":\"corruption\","),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("\"triggers\":[\"eta_below_threshold\","
                      "\"rejection_burst\"]"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("\"eta\":0.015625"), std::string::npos) << text;
  EXPECT_NE(text.find("{\"episode\":5,\"step\":7,\"kind\":\"message_reject\","
                      "\"reason\":\"stale\",\"sender\":3,\"value\":0.75}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("\"kind\":\"ladder_transition\",\"from\":0,\"to\":2"),
            std::string::npos)
      << text;
  // One header + one line per event, each newline-terminated.
  std::size_t lines = 0;
  for (const char c : text) lines += c == '\n';
  EXPECT_EQ(lines, 3u);
}

TEST(FlightDumpJsonl, OmitsEmptyLabels) {
  std::ostringstream os;
  obs::write_flight_dump_jsonl(os, make_dump(0));
  EXPECT_EQ(os.str().find("scenario"), std::string::npos);
  EXPECT_EQ(os.str().find("fault"), std::string::npos);
}

TEST(FlightDumpCollector, TakeSortedRestoresEpisodeOrder) {
  FlightDumpCollector collector;
  collector.add(make_dump(9));
  collector.add(make_dump(2));
  collector.add(make_dump(5));
  EXPECT_EQ(collector.size(), 3u);
  const std::vector<FlightDump> sorted = collector.take_sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].episode, 2u);
  EXPECT_EQ(sorted[1].episode, 5u);
  EXPECT_EQ(sorted[2].episode, 9u);
  EXPECT_EQ(collector.size(), 0u) << "take_sorted drains the collector";

  // write_flight_dumps_jsonl sorts on its own, so insertion order never
  // leaks into the bytes.
  FlightDumpCollector shuffled;
  shuffled.add(make_dump(5));
  shuffled.add(make_dump(9));
  shuffled.add(make_dump(2));
  std::ostringstream a, b;
  obs::write_flight_dumps_jsonl(a, sorted);
  EXPECT_EQ(obs::write_flight_dumps_jsonl(b, shuffled.take_sorted()), 3u);
  EXPECT_EQ(a.str(), b.str());
}

// ---------------------------------------------------------------------------
// Satellite: histogram refetch with mismatched bounds must be loud

TEST(MetricsRegistry, HistogramBoundsMismatchIsContractViolation) {
  ScopedContractMode mode(ContractMode::kThrow);
  obs::MetricsRegistry reg;
  reg.histogram("h", {1.0, 2.0}).observe(1.5);
  // Same bounds refetch is fine and returns the same histogram.
  EXPECT_EQ(reg.histogram("h", {1.0, 2.0}).count(), 1u);
  // Different bounds used to silently keep the first-creation buckets;
  // now it trips the same contract the shard merge enforces.
  EXPECT_THROW(reg.histogram("h", {1.0, 3.0}), ContractViolation);
  EXPECT_THROW(reg.histogram("h", {1.0}), ContractViolation);
}

// ---------------------------------------------------------------------------
// Satellite: shard-merge determinism of dyadic-valued histograms

/// Observes \p n dyadic values (exactly representable, so bucket edges
/// decide identically on every platform) round-robin across \p shards
/// shard-local registries, then merges in shard order.
obs::MetricsRegistry sharded_fold(std::size_t shards, std::size_t n) {
  const std::vector<double> bounds{-0.5, 0.0, 0.25, 0.5, 1.0, 2.0};
  std::vector<obs::MetricsRegistry> locals(shards);
  for (std::size_t i = 0; i < n; ++i) {
    // Dyadic sweep over [-1, 3): i/8 - 1 with an exact 1/8 step.
    const double v = static_cast<double>(i % 32) * 0.125 - 1.0;
    obs::MetricsRegistry& shard = locals[i % shards];
    shard.histogram("cvsafe_fleet_eta", bounds).observe(v);
    shard.counter("cvsafe_fleet_episodes_total").inc();
  }
  obs::MetricsRegistry merged;
  for (const obs::MetricsRegistry& shard : locals) merged.merge(shard);
  return merged;
}

TEST(MetricsRegistry, DyadicHistogramMergeIsShardCountInvariant) {
  for (const std::size_t n : {std::size_t{3}, std::size_t{64},
                              std::size_t{8192}}) {
    const obs::MetricsRegistry one = sharded_fold(1, n);
    const std::string text = one.prometheus_text();
    for (const std::size_t shards : {std::size_t{4}, std::size_t{7}}) {
      const obs::MetricsRegistry many = sharded_fold(shards, n);
      EXPECT_EQ(text, many.prometheus_text())
          << n << " values over " << shards << " shards";
      EXPECT_EQ(one.csv(), many.csv());
      const auto& h1 = one.histograms().at("cvsafe_fleet_eta");
      const auto& hn = many.histograms().at("cvsafe_fleet_eta");
      EXPECT_EQ(h1.counts(), hn.counts());
      EXPECT_EQ(h1.count(), n);
    }
  }
}

}  // namespace
}  // namespace cvsafe
