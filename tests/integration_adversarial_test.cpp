// Adversarial safety probe: the embedded "planner" is a worst-case
// adversary that KNOWS the exact oncoming-vehicle state and, every step,
// picks the acceleration that brings the ego closest to a collision.
// Wrapped in the compound planner, the system must still never collide —
// this is the sharpest empirical statement of the Section III-E theorem,
// far beyond what any real NN planner would attempt.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "cvsafe/core/compound_planner.hpp"
#include "cvsafe/eval/simulation.hpp"
#include "cvsafe/scenario/safety_model.hpp"
#include "cvsafe/vehicle/accel_profile.hpp"
#include "cvsafe/vehicle/dynamics.hpp"

namespace cvsafe::eval {
namespace {

using scenario::LeftTurnWorld;

/// Picks, among sampled feasible accelerations, the one whose next state
/// minimizes the time-distance between the ego's occupancy and the TRUE
/// position of the oncoming vehicle (injected out-of-band). A planner
/// deliberately built to cause a crash.
class AdversarialPlanner final : public core::PlannerBase<LeftTurnWorld> {
 public:
  AdversarialPlanner(std::shared_ptr<const scenario::LeftTurnScenario> scn)
      : scn_(std::move(scn)) {}

  void set_truth(const vehicle::VehicleState& c1) { c1_truth_ = c1; }

  double plan(const LeftTurnWorld& world) override {
    const auto& lim = scn_->ego_limits();
    const double dt = scn_->control_period();
    const vehicle::DoubleIntegrator dyn(lim);
    double best_a = lim.a_max;
    double best_score = 1e18;
    for (int i = 0; i <= 20; ++i) {
      const double a = lim.a_min + (lim.a_max - lim.a_min) * i / 20.0;
      const auto next = dyn.step(world.ego, a, dt);
      // Score: projected |ego zone time - C1 zone time| — the adversary
      // wants to be in the zone exactly when C1 is.
      const auto& g = scn_->geometry();
      const double ego_mid = 0.5 * (g.ego_front + g.ego_back);
      const double c1_mid = 0.5 * (g.c1_front + g.c1_back);
      const double t_ego = next.v > 0.1
                               ? (ego_mid - next.p) / next.v
                               : 1e9;
      const double t_c1 = c1_truth_.v > 0.1
                              ? (c1_mid - c1_truth_.p) / c1_truth_.v
                              : 1e9;
      const double score = std::abs(t_ego - t_c1);
      if (score < best_score) {
        best_score = score;
        best_a = a;
      }
    }
    return best_a;
  }

  std::string_view name() const override { return "adversary"; }

 private:
  std::shared_ptr<const scenario::LeftTurnScenario> scn_;
  vehicle::VehicleState c1_truth_{};
};

struct AdversarialOutcome {
  bool collided = false;
  std::size_t emergency_steps = 0;
  std::size_t steps = 0;
};

AdversarialOutcome run_adversarial_episode(const SimConfig& config,
                                           bool use_compound,
                                           std::uint64_t seed) {
  const auto scn = config.make_scenario();
  util::Rng rng(seed);

  const auto& wl = config.workload;
  const auto grid_idx = static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(wl.p1_grid.size()) - 1));
  vehicle::VehicleState c1{
      scenario::LeftTurnGeometry::oncoming_to_frame(wl.p1_grid[grid_idx]),
      rng.uniform(wl.v1_init_min, wl.v1_init_max)};
  const auto steps =
      static_cast<std::size_t>(config.horizon / config.dt_c);
  const auto profile = vehicle::AccelProfile::random(
      steps, config.dt_c, c1.v, config.c1_limits, {}, rng);

  auto adversary = std::make_shared<AdversarialPlanner>(scn);
  std::shared_ptr<core::PlannerBase<LeftTurnWorld>> planner = adversary;
  core::CompoundPlanner<LeftTurnWorld>* compound = nullptr;
  if (use_compound) {
    auto model = std::make_shared<scenario::LeftTurnSafetyModel>(scn);
    auto c = std::make_shared<core::CompoundPlanner<LeftTurnWorld>>(
        adversary, std::move(model));
    compound = c.get();
    planner = c;
  }

  vehicle::DoubleIntegrator ego_dyn(config.ego_limits);
  vehicle::DoubleIntegrator c1_dyn(config.c1_limits);
  vehicle::VehicleState ego{config.geometry.ego_start, config.ego_v0};
  sensing::Sensor sensor(config.sensor);
  comm::Channel channel(config.comm);
  filter::InformationFilter monitor_est(config.c1_limits, config.sensor,
                                        filter::InfoFilterOptions::basic());

  AdversarialOutcome out;
  for (std::size_t step = 0; step < steps; ++step) {
    const double t = static_cast<double>(step) * config.dt_c;
    const double a1 = profile.at(step);
    const vehicle::VehicleSnapshot snap{t, c1, a1};
    channel.offer(comm::Message{1, snap}, rng);
    for (const auto& msg : channel.collect(t)) monitor_est.on_message(msg);
    if (const auto r = sensor.sense(snap, rng)) monitor_est.on_sensor(*r);

    adversary->set_truth(c1);  // the adversary cheats with exact truth
    LeftTurnWorld world;
    world.t = t;
    world.ego = ego;
    world.c1_monitor = monitor_est.estimate(t);
    world.tau1_monitor = scn->c1_window_conservative(world.c1_monitor);
    world.c1_nn = world.c1_monitor;
    world.tau1_nn = world.tau1_monitor;

    const double a0 = planner->plan(world);
    ++out.steps;
    if (compound != nullptr && compound->last_was_emergency()) {
      ++out.emergency_steps;
    }
    ego = ego_dyn.step(ego, a0, config.dt_c);
    c1 = c1_dyn.step(c1, a1, config.dt_c);
    if (scn->collision(ego.p, c1.p)) {
      out.collided = true;
      break;
    }
    if (scn->ego_reached_target(ego.p)) break;
  }
  return out;
}

TEST(Adversarial, UnprotectedAdversaryDoesCollide) {
  // Sanity: the adversary is genuinely dangerous without the framework.
  const SimConfig config = SimConfig::paper_defaults();
  std::size_t collisions = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    if (run_adversarial_episode(config, /*use_compound=*/false, seed)
            .collided) {
      ++collisions;
    }
  }
  EXPECT_GT(collisions, 20u);
}

class AdversarialSafety : public ::testing::TestWithParam<int> {};

TEST_P(AdversarialSafety, CompoundContainsTheAdversary) {
  SimConfig config = SimConfig::paper_defaults();
  switch (GetParam()) {
    case 0: break;  // no disturbance
    case 1:
      config.comm = comm::CommConfig::delayed(0.6, 0.25);
      break;
    case 2:
      config.comm = comm::CommConfig::messages_lost();
      config.sensor = sensing::SensorConfig::uniform(4.0);
      break;
    case 3:
      config.comm = comm::CommConfig::bursty(0.5, 8.0, 0.25);
      break;
    default: break;
  }
  std::size_t emergency_total = 0;
  for (std::uint64_t seed = 1; seed <= 80; ++seed) {
    const auto out =
        run_adversarial_episode(config, /*use_compound=*/true, seed);
    ASSERT_FALSE(out.collided) << "seed " << seed;
    emergency_total += out.emergency_steps;
  }
  // Containing an active adversary requires real interventions.
  EXPECT_GT(emergency_total, 0u);
}

INSTANTIATE_TEST_SUITE_P(Channels, AdversarialSafety,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace cvsafe::eval
