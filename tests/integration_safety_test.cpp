// End-to-end safety guarantee (DESIGN.md invariant 1, Eq. 1 right half):
// a compound planner NEVER collides — for any wrapped planner (expert or
// trained NN, conservative or aggressive), under every communication
// setting, across many random workloads. This is the paper's headline
// property, exercised through the full stack: channel, sensor, filters,
// monitor, emergency planner, dynamics.

#include <gtest/gtest.h>

#include "cvsafe/eval/batch.hpp"
#include "cvsafe/eval/experiments.hpp"

namespace cvsafe::eval {
namespace {

SimConfig setting_config(CommSetting setting, double sweep) {
  SimConfig base = SimConfig::paper_defaults();
  return apply_setting(base, setting, sweep);
}

struct SafetyCase {
  CommSetting setting;
  double sweep;
  bool aggressive_style;
  bool ultimate;
};

class CompoundSafetyTest : public ::testing::TestWithParam<SafetyCase> {};

TEST_P(CompoundSafetyTest, NeverCollides) {
  const SafetyCase c = GetParam();
  const SimConfig config = setting_config(c.setting, c.sweep);

  // Expert-backed agents (deterministic, no training): the framework must
  // protect even a deliberately reckless embedded planner.
  AgentBlueprint bp;
  bp.scenario = config.make_scenario();
  bp.sensor = config.sensor;
  bp.config = c.ultimate ? AgentConfig::ultimate_compound()
                         : AgentConfig::basic_compound();
  bp.config.use_expert_planner = true;
  bp.config.expert_params = c.aggressive_style
                                ? planners::ExpertParams::aggressive()
                                : planners::ExpertParams::conservative();
  bp.name = "safety-case";

  const BatchStats stats = run_batch(config, bp, 120, 1000, 0);
  EXPECT_EQ(stats.safe_count, stats.n)
      << "collisions under " << comm_setting_name(c.setting)
      << " sweep=" << c.sweep;
}

INSTANTIATE_TEST_SUITE_P(
    AllSettings, CompoundSafetyTest,
    ::testing::Values(
        SafetyCase{CommSetting::kNoDisturbance, 0.0, false, false},
        SafetyCase{CommSetting::kNoDisturbance, 0.0, true, false},
        SafetyCase{CommSetting::kNoDisturbance, 0.0, true, true},
        SafetyCase{CommSetting::kDelayed, 0.5, false, true},
        SafetyCase{CommSetting::kDelayed, 0.5, true, false},
        SafetyCase{CommSetting::kDelayed, 0.95, true, true},
        SafetyCase{CommSetting::kLost, 2.0, true, false},
        SafetyCase{CommSetting::kLost, 4.8, true, true},
        SafetyCase{CommSetting::kLost, 4.8, false, true}));

// The pure aggressive planner DOES collide (otherwise the guarantee above
// would be vacuous): the workload genuinely stresses safety.
TEST(PureAggressiveBaseline, CollidesWithoutTheFramework) {
  const SimConfig config =
      setting_config(CommSetting::kDelayed, 0.5);
  AgentBlueprint bp;
  bp.scenario = config.make_scenario();
  bp.sensor = config.sensor;
  bp.config = AgentConfig::pure_nn();
  bp.config.use_expert_planner = true;
  bp.config.expert_params = planners::ExpertParams::aggressive();
  bp.name = "pure-aggressive";
  const BatchStats stats = run_batch(config, bp, 200, 1000, 0);
  EXPECT_LT(stats.safe_count, stats.n)
      << "the aggressive baseline never collided - the safety test above "
         "is not probing anything";
}

// Trained-NN version of the headline property, across all three settings.
TEST(TrainedNnCompound, AggressiveUltimateNeverCollides) {
  for (const auto setting : {CommSetting::kNoDisturbance,
                             CommSetting::kDelayed, CommSetting::kLost}) {
    const SimConfig config = setting_config(
        setting, setting == CommSetting::kLost ? 3.0 : 0.5);
    const auto bp = make_nn_blueprint(
        config, planners::PlannerStyle::kAggressive,
        PlannerVariant::kUltimate);
    const BatchStats stats = run_batch(config, bp, 150, 2000, 0);
    EXPECT_EQ(stats.safe_count, stats.n)
        << "collision under " << comm_setting_name(setting);
  }
}

// Emergency planner actually engages for the aggressive planner (the
// guarantee is earned, not incidental).
TEST(TrainedNnCompound, EmergencyEngagesForAggressivePlanner) {
  const SimConfig config = setting_config(CommSetting::kNoDisturbance, 0.0);
  const auto bp = make_nn_blueprint(config,
                                    planners::PlannerStyle::kAggressive,
                                    PlannerVariant::kBasic);
  const BatchStats stats = run_batch(config, bp, 100, 1, 0);
  EXPECT_GT(stats.emergency_steps, 0u);
  EXPECT_EQ(stats.safe_count, stats.n);
}

}  // namespace
}  // namespace cvsafe::eval
