// Tests for table rendering, CSV output, thread pool / parallel_for, and
// environment configuration.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "cvsafe/util/config.hpp"
#include "cvsafe/util/csv.hpp"
#include "cvsafe/util/interval_set.hpp"
#include "cvsafe/util/linalg.hpp"
#include "cvsafe/util/table.hpp"
#include "cvsafe/util/thread_pool.hpp"

namespace cvsafe::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t("Title");
  t.set_header({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_separator();
  t.add_row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_NE(s.find('|'), std::string::npos);
  EXPECT_EQ(t.row_count(), 3u);  // includes separator entry
}

TEST(Table, ShortRowsPadded) {
  Table t;
  t.set_header({"x", "y", "z"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(-1.0, 0), "-1");
  EXPECT_EQ(Table::percent(0.9966), "99.66%");
  EXPECT_EQ(Table::percent(1.0, 0), "100%");
}

TEST(Csv, WritesQuotedCells) {
  const auto path =
      std::filesystem::temp_directory_path() / "cvsafe_csv_test.csv";
  {
    CsvWriter csv(path.string());
    ASSERT_TRUE(csv.ok());
    csv.header({"plain", "with,comma", "with\"quote"});
    csv.row({1.5, -2.0, 3.0});
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "plain,\"with,comma\",\"with\"\"quote\"");
  EXPECT_EQ(line2, "1.5,-2,3");
  std::filesystem::remove(path);
}

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ParallelFor, CoversAllIndicesOnce) {
  std::vector<std::atomic<int>> hits(500);
  parallel_for(hits.size(),
               [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SerialFallback) {
  std::vector<int> hits(3, 0);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; }, 1);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, ZeroIterations) {
  parallel_for(0, [](std::size_t) { FAIL(); }, 4);
}

TEST(EnvConfig, IntAndDoubleParsing) {
  ::setenv("CVSAFE_TEST_INT", "42", 1);
  ::setenv("CVSAFE_TEST_DBL", "2.5", 1);
  ::setenv("CVSAFE_TEST_BAD", "xyz", 1);
  EXPECT_EQ(env_int("CVSAFE_TEST_INT", 7), 42);
  EXPECT_EQ(env_double("CVSAFE_TEST_DBL", 7.0), 2.5);
  EXPECT_EQ(env_int("CVSAFE_TEST_BAD", 7), 7);
  EXPECT_EQ(env_int("CVSAFE_TEST_UNSET_123", 7), 7);
  EXPECT_FALSE(env_string("CVSAFE_TEST_UNSET_123").has_value());
  ::unsetenv("CVSAFE_TEST_INT");
  ::unsetenv("CVSAFE_TEST_DBL");
  ::unsetenv("CVSAFE_TEST_BAD");
}

TEST(Printing, IntervalAndSetFormat) {
  std::ostringstream os;
  os << Interval{1.0, 2.0} << ' ' << Interval::empty_interval() << ' '
     << IntervalSet{{0.0, 1.0}, {3.0, 4.0}} << ' ' << IntervalSet{};
  EXPECT_EQ(os.str(), "[1, 2] [empty] {[0, 1] u [3, 4]} {}");
}

TEST(Printing, LinalgFormat) {
  std::ostringstream os;
  os << Vec2{1.0, 2.0} << ' ' << Mat2::identity();
  EXPECT_EQ(os.str(), "(1, 2) [[1, 0], [0, 1]]");
}

TEST(EnvConfig, BenchSims) {
  ::setenv("CVSAFE_SIMS", "123", 1);
  EXPECT_EQ(bench_sims(10), 123u);
  ::setenv("CVSAFE_SIMS", "-5", 1);
  EXPECT_EQ(bench_sims(10), 10u);
  ::unsetenv("CVSAFE_SIMS");
  EXPECT_EQ(bench_sims(10), 10u);
}

}  // namespace
}  // namespace cvsafe::util
