// Per-sweep equivalence of the pool-resident SoA safety stack against its
// scalar reference implementations. The fleet engine's batched sweeps are
// only allowed to exist because every slot evolves bit-identically to a
// scalar object fed the same sequence: FleetEstimator vs KalmanFilter,
// the SoA propagate_batch vs scalar propagate, FleetLadder vs
// DegradationLadder. Every comparison below is EXPECT_EQ on doubles —
// shared kalman_core / ladder_target math, not approximate agreement.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "cvsafe/core/degradation.hpp"
#include "cvsafe/filter/fleet_estimator.hpp"
#include "cvsafe/filter/kalman.hpp"
#include "cvsafe/filter/reachability.hpp"
#include "cvsafe/vehicle/dynamics.hpp"

namespace {

using namespace cvsafe;

// Deterministic measurement stream: smooth, phase-shifted per lane so no
// two lanes see the same sequence (a transposed-slot bug cannot cancel).
sensing::SensorReading reading_at(double t, double phase) {
  sensing::SensorReading r;
  r.t = t;
  r.p = 50.0 + 3.0 * t + 0.5 * std::sin(2.3 * t + phase);
  r.v = 3.0 + 0.25 * std::cos(1.7 * t + phase);
  r.a = 0.25 * std::sin(0.9 * t + phase);
  return r;
}

void expect_slot_matches_scalar(const filter::FleetEstimator& pool,
                                std::size_t slot,
                                const filter::KalmanFilter& scalar,
                                double t_query) {
  EXPECT_EQ(pool.initialized(slot), scalar.initialized());
  EXPECT_EQ(pool.last_update_time(slot), scalar.last_update_time());
  EXPECT_EQ(pool.q_scale(slot), scalar.q_scale());
  EXPECT_EQ(pool.nis(slot).mean_nis(), scalar.nis().mean_nis());
  EXPECT_EQ(pool.nis(slot).count(), scalar.nis().count());

  const auto pv = pool.view(slot);
  const auto sv = scalar.view();
  EXPECT_EQ(pv.x.x, sv.x.x);
  EXPECT_EQ(pv.x.y, sv.x.y);
  EXPECT_EQ(pv.p.a, sv.p.a);
  EXPECT_EQ(pv.p.b, sv.p.b);
  EXPECT_EQ(pv.p.c, sv.p.c);
  EXPECT_EQ(pv.p.d, sv.p.d);

  const util::Vec2 px = pool.state_at(slot, t_query);
  const util::Vec2 sx = scalar.state_at(t_query);
  EXPECT_EQ(px.x, sx.x);
  EXPECT_EQ(px.y, sx.y);

  const util::Interval pp = pool.position_interval(slot, t_query);
  const util::Interval sp = scalar.position_interval(t_query);
  EXPECT_EQ(pp.lo, sp.lo);
  EXPECT_EQ(pp.hi, sp.hi);
  const util::Interval pvel = pool.velocity_interval(slot, t_query);
  const util::Interval svel = scalar.velocity_interval(t_query);
  EXPECT_EQ(pvel.lo, svel.lo);
  EXPECT_EQ(pvel.hi, svel.hi);
}

TEST(FleetEstimator, UpdateSweepMatchesScalarKalmanPerSlot) {
  filter::KalmanConfig config;
  config.dt = 0.1;
  config.delta_p = 0.8;
  config.delta_v = 0.4;
  config.delta_a = 0.6;
  config.history_depth = 8;

  filter::FleetEstimator pool;
  constexpr std::size_t kLanes = 5;
  std::vector<std::size_t> slots;
  std::vector<filter::KalmanFilter> scalars;
  for (std::size_t i = 0; i < kLanes; ++i) {
    slots.push_back(pool.acquire(config));
    scalars.emplace_back(config);
  }

  for (std::size_t step = 0; step < 30; ++step) {
    const double t = 0.1 * static_cast<double>(step);
    // Staging order is reversed relative to slot order: the sweep must
    // not depend on the order readings were staged, only on their slots.
    for (std::size_t i = kLanes; i-- > 0;) {
      const double phase = 0.7 * static_cast<double>(i);
      pool.stage(slots[i], reading_at(t, phase));
    }
    pool.update_batch();
    for (std::size_t i = 0; i < kLanes; ++i) {
      scalars[i].update(reading_at(t, 0.7 * static_cast<double>(i)));
    }
    for (std::size_t i = 0; i < kLanes; ++i) {
      expect_slot_matches_scalar(pool, slots[i], scalars[i], t + 0.05);
    }
  }
}

TEST(FleetEstimator, MessageRollbackMatchesScalar) {
  filter::KalmanConfig config;
  config.history_depth = 16;
  filter::FleetEstimator pool;
  const std::size_t slot = pool.acquire(config);
  filter::KalmanFilter scalar(config);

  for (std::size_t step = 0; step < 12; ++step) {
    const double t = 0.1 * static_cast<double>(step);
    pool.stage(slot, reading_at(t, 0.3));
    pool.update_batch();
    scalar.update(reading_at(t, 0.3));
  }

  // Exact state reported at a time inside the retained history: both
  // stores must rewind, re-anchor, and replay the same tail.
  pool.correct_with_message(slot, 0.55, 51.6, 3.1, 0.2);
  scalar.correct_with_message(0.55, 51.6, 3.1, 0.2);
  expect_slot_matches_scalar(pool, slot, scalar, 1.3);

  // The filters keep running after the rollback.
  for (std::size_t step = 12; step < 20; ++step) {
    const double t = 0.1 * static_cast<double>(step);
    pool.stage(slot, reading_at(t, 0.3));
    pool.update_batch();
    scalar.update(reading_at(t, 0.3));
    expect_slot_matches_scalar(pool, slot, scalar, t + 0.07);
  }

  // Messages older than an applied one are ignored by both.
  pool.correct_with_message(slot, 0.4, 50.0, 3.0, 0.0);
  scalar.correct_with_message(0.4, 50.0, 3.0, 0.0);
  expect_slot_matches_scalar(pool, slot, scalar, 2.1);
}

TEST(FleetEstimator, PredictCacheIsTransparent) {
  filter::KalmanConfig config;
  filter::FleetEstimator pool;
  const std::size_t slot = pool.acquire(config);
  filter::KalmanFilter scalar(config);

  for (std::size_t step = 0; step < 6; ++step) {
    const double t = 0.1 * static_cast<double>(step);
    pool.stage(slot, reading_at(t, 1.1));
    pool.update_batch();
    scalar.update(reading_at(t, 1.1));
  }

  const double t_staged = 0.62;
  pool.stage_predict(slot, t_staged);
  pool.predict_batch();

  // Cache-hit read (the staged time) and cache-miss reads (other times)
  // must be indistinguishable from the scalar on-the-fly computation.
  for (const double t : {t_staged, 0.58, 0.75, 1.5}) {
    expect_slot_matches_scalar(pool, slot, scalar, t);
  }

  // A measurement sweep invalidates the cache: the cached (x, P) at
  // t_staged must not survive into the post-update state.
  pool.stage(slot, reading_at(0.7, 1.1));
  pool.update_batch();
  scalar.update(reading_at(0.7, 1.1));
  expect_slot_matches_scalar(pool, slot, scalar, t_staged);
}

TEST(FleetEstimator, AdaptiveQScaleMatchesScalar) {
  filter::KalmanConfig config;
  config.adaptive = true;
  config.delta_p = 0.3;
  config.delta_v = 0.2;
  config.delta_a = 0.1;  // overconfident model: NIS inflation engages
  filter::FleetEstimator pool;
  const std::size_t slot = pool.acquire(config);
  filter::KalmanFilter scalar(config);

  for (std::size_t step = 0; step < 40; ++step) {
    const double t = 0.1 * static_cast<double>(step);
    // Hard maneuver the model does not expect.
    sensing::SensorReading r;
    r.t = t;
    r.p = 50.0 + 3.0 * t + 2.0 * std::sin(4.0 * t);
    r.v = 3.0 + 6.0 * std::cos(4.0 * t);
    r.a = 0.0;
    pool.stage(slot, r);
    pool.update_batch();
    scalar.update(r);
    expect_slot_matches_scalar(pool, slot, scalar, t + 0.05);
  }
  EXPECT_GT(pool.q_scale(slot), 1.0);  // the adaptive path actually ran
}

TEST(FleetEstimator, SlotReuseResetsToVirginState) {
  filter::KalmanConfig config;
  filter::FleetEstimator pool;
  const std::size_t a = pool.acquire(config);
  const std::size_t b = pool.acquire(config);
  EXPECT_EQ(pool.active(), 2u);

  for (std::size_t step = 0; step < 10; ++step) {
    const double t = 0.1 * static_cast<double>(step);
    pool.stage(a, reading_at(t, 0.0));
    pool.stage(b, reading_at(t, 2.0));
    pool.update_batch();
  }

  pool.release(a);
  const std::size_t a2 = pool.acquire(config);  // free-listed: same slot
  EXPECT_EQ(a2, a);
  EXPECT_FALSE(pool.initialized(a2));
  EXPECT_EQ(pool.nis(a2).count(), 0u);

  // The reused slot behaves like a fresh scalar filter — including the
  // rollback history, which must not leak from the previous tenant.
  filter::KalmanFilter scalar(config);
  for (std::size_t step = 0; step < 8; ++step) {
    const double t = 0.1 * static_cast<double>(step);
    pool.stage(a2, reading_at(t, 5.0));
    pool.update_batch();
    scalar.update(reading_at(t, 5.0));
  }
  pool.correct_with_message(a2, 0.35, 51.0, 3.05, 0.1);
  scalar.correct_with_message(0.35, 51.0, 3.05, 0.1);
  expect_slot_matches_scalar(pool, a2, scalar, 0.9);

  // The untouched neighbor was not disturbed by the reuse.
  filter::KalmanFilter scalar_b(config);
  for (std::size_t step = 0; step < 10; ++step) {
    scalar_b.update(reading_at(0.1 * static_cast<double>(step), 2.0));
  }
  expect_slot_matches_scalar(pool, b, scalar_b, 1.0);
}

// --- SoA reachability sweep ----------------------------------------------

TEST(ReachabilitySweep, BatchOverloadsMatchScalarPropagate) {
  const vehicle::VehicleLimits limits{2.0, 15.0, -3.0, 3.0};

  std::vector<filter::StateBounds> in;
  std::vector<double> t;
  for (std::size_t i = 0; i < 33; ++i) {
    const double base = 0.1 * static_cast<double>(i);
    filter::StateBounds b;
    b.t = base;
    b.p = util::Interval{40.0 + base, 41.5 + 2.0 * base};
    b.v = util::Interval{2.0 + 0.25 * base, 4.0 + 0.5 * base};
    in.push_back(b);
    // Mix of horizons, including saturating ones and the dt <= 0 branch
    // (lane 7: target before the source time, propagate returns input).
    t.push_back(i == 7 ? base - 0.5 : base + 0.05 * static_cast<double>(i));
  }

  // AoS span overload.
  std::vector<filter::StateBounds> out(in.size());
  filter::propagate_batch(in, t, limits, out);

  // Per-field SoA overload.
  const std::size_t n = in.size();
  std::vector<double> t0(n), p_lo(n), p_hi(n), v_lo(n), v_hi(n);
  for (std::size_t i = 0; i < n; ++i) {
    t0[i] = in[i].t;
    p_lo[i] = in[i].p.lo;
    p_hi[i] = in[i].p.hi;
    v_lo[i] = in[i].v.lo;
    v_hi[i] = in[i].v.hi;
  }
  std::vector<double> ot(n), opl(n), oph(n), ovl(n), ovh(n);
  filter::propagate_batch(
      filter::ReachLanes{t0, p_lo, p_hi, v_lo, v_hi, t}, limits, ot, opl,
      oph, ovl, ovh);

  for (std::size_t i = 0; i < n; ++i) {
    const filter::StateBounds ref = filter::propagate(in[i], t[i], limits);
    EXPECT_EQ(out[i].t, ref.t) << "lane " << i;
    EXPECT_EQ(out[i].p.lo, ref.p.lo) << "lane " << i;
    EXPECT_EQ(out[i].p.hi, ref.p.hi) << "lane " << i;
    EXPECT_EQ(out[i].v.lo, ref.v.lo) << "lane " << i;
    EXPECT_EQ(out[i].v.hi, ref.v.hi) << "lane " << i;
    EXPECT_EQ(ot[i], ref.t) << "lane " << i;
    EXPECT_EQ(opl[i], ref.p.lo) << "lane " << i;
    EXPECT_EQ(oph[i], ref.p.hi) << "lane " << i;
    EXPECT_EQ(ovl[i], ref.v.lo) << "lane " << i;
    EXPECT_EQ(ovh[i], ref.v.hi) << "lane " << i;
  }
}

// --- Pool-resident ladder ------------------------------------------------

// A signal script that walks the ladder through every regime: healthy,
// stale, lost, inconsistent, then a recovery with one mid-streak relapse
// (exercising the clear-streak reset) and a full hysteretic climb.
core::DegradationSignals signal_at(std::size_t step) {
  core::DegradationSignals s;
  s.have_message = step >= 1;
  s.filter_consistent = !(step >= 14 && step < 17);
  if (step < 4) {
    s.message_age = 0.05;
  } else if (step < 8) {
    s.message_age = 0.6;  // stale (budget 0.3)
  } else if (step < 14) {
    s.message_age = 1.4;  // lost (budget 1.0)
  } else if (step == 20) {
    s.message_age = 0.4;  // relapse above the tightened recover budget
  } else {
    s.message_age = 0.05;  // clear: climbs back one rung per streak
  }
  return s;
}

TEST(FleetLadder, MatchesScalarDegradationLadder) {
  core::LadderConfig config;
  config.recover_steps = 3;

  core::DegradationLadder scalar(config);
  core::FleetLadder pool;
  const std::size_t slot = pool.acquire(config);

  for (std::size_t step = 0; step < 60; ++step) {
    const core::DegradationSignals s = signal_at(step);
    const core::DegradationLevel want = scalar.update(step, s);
    const core::DegradationLevel got = pool.update(slot, s);
    EXPECT_EQ(got, want) << "step " << step;
    EXPECT_EQ(pool.level(slot), scalar.level()) << "step " << step;
  }

  const core::DegradationStats want = scalar.stats();
  const core::DegradationStats got = pool.stats(slot);
  EXPECT_EQ(got.transitions, want.transitions);
  EXPECT_GT(want.transitions, 0u);  // the script actually moved the ladder
  for (std::size_t i = 0; i < core::kNumDegradationLevels; ++i) {
    EXPECT_EQ(got.steps_at[i], want.steps_at[i]) << "level " << i;
  }
}

TEST(FleetLadder, SlotReuseResetsHysteresisAndTallies) {
  core::LadderConfig config;
  core::FleetLadder pool;
  const std::size_t slot = pool.acquire(config);

  core::DegradationSignals bad;
  bad.filter_consistent = false;
  pool.update(slot, bad);
  ASSERT_EQ(pool.level(slot), core::DegradationLevel::kEmergencyBiased);

  pool.release(slot);
  const std::size_t again = pool.acquire(config);
  EXPECT_EQ(again, slot);
  EXPECT_EQ(pool.level(again), core::DegradationLevel::kFull);
  const core::DegradationStats stats = pool.stats(again);
  EXPECT_EQ(stats.transitions, 0u);
  for (const std::size_t steps : stats.steps_at) EXPECT_EQ(steps, 0u);
}

}  // namespace
