#include "cvsafe/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cvsafe/util/rng.hpp"

namespace cvsafe::util {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(1);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5, 5);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_NEAR(a.mean(), 2.0, 1e-12);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_NEAR(b.mean(), 2.0, 1e-12);
}

TEST(Mean, Basic) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_NEAR(mean(xs), 2.0, 1e-12);
  EXPECT_EQ(mean({}), 0.0);
}

TEST(Rmse, KnownValue) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{1.0, 4.0, 3.0};
  EXPECT_NEAR(rmse(a, b), std::sqrt(4.0 / 3.0), 1e-12);
}

TEST(Rmse, ZeroWhenEqual) {
  const std::vector<double> a{1.5, -2.5};
  EXPECT_EQ(rmse(a, a), 0.0);
}

TEST(Quantile, MedianAndExtremes) {
  const std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_NEAR(quantile(xs, 0.5), 3.0, 1e-12);
  EXPECT_NEAR(quantile(xs, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(quantile(xs, 1.0), 5.0, 1e-12);
  EXPECT_NEAR(quantile(xs, 0.25), 2.0, 1e-12);
}

TEST(FractionPositive, Basic) {
  const std::vector<double> xs{1.0, -1.0, 0.0, 2.0};
  EXPECT_NEAR(fraction_positive(xs), 0.5, 1e-12);
  EXPECT_EQ(fraction_positive({}), 0.0);
}

TEST(BootstrapCi, CoversTheMean) {
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 400; ++i) xs.push_back(rng.normal(5.0, 2.0));
  Rng boot(1);
  const ConfidenceInterval ci = bootstrap_mean_ci(xs, 0.95, boot, 2000);
  EXPECT_NEAR(ci.point, mean(xs), 1e-12);
  EXPECT_LT(ci.lo, ci.point);
  EXPECT_GT(ci.hi, ci.point);
  // Interval roughly 2 * 1.96 * sigma / sqrt(n) wide.
  const double expected_width = 2.0 * 1.96 * 2.0 / std::sqrt(400.0);
  EXPECT_NEAR(ci.hi - ci.lo, expected_width, expected_width * 0.5);
  // Deterministic given the bootstrap seed.
  Rng boot2(1);
  const ConfidenceInterval ci2 = bootstrap_mean_ci(xs, 0.95, boot2, 2000);
  EXPECT_EQ(ci.lo, ci2.lo);
  EXPECT_EQ(ci.hi, ci2.hi);
}

TEST(BootstrapCi, DegenerateSample) {
  Rng rng(1);
  const std::vector<double> xs{3.0, 3.0, 3.0};
  const ConfidenceInterval ci = bootstrap_mean_ci(xs, 0.9, rng, 100);
  EXPECT_EQ(ci.lo, 3.0);
  EXPECT_EQ(ci.hi, 3.0);
}

}  // namespace
}  // namespace cvsafe::util
