// The generic Eq. 3 preimage operator: exact analytic checks on a simple
// double integrator, plus agreement with the left-turn closed form on the
// slack-band branch.

#include "cvsafe/core/preimage.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "cvsafe/scenario/left_turn.hpp"
#include "cvsafe/vehicle/dynamics.hpp"

namespace cvsafe::core {
namespace {

TEST(SampleControls, EndpointsAndSpacing) {
  const auto u = sample_controls(-6.0, 3.0, 4);
  ASSERT_EQ(u.size(), 4u);
  EXPECT_EQ(u.front(), -6.0);
  EXPECT_EQ(u.back(), 3.0);
  EXPECT_NEAR(u[1], -3.0, 1e-12);
}

TEST(Preimage, DoubleIntegratorWallAnalytic) {
  // System: x' = x + v dt + u dt^2/2, v' = v + u dt; unsafe: x > 10.
  // A state is boundary iff it is safe and full throttle crosses the wall:
  //   x + v dt + u_max dt^2 / 2 > 10.
  const double dt = 0.1;
  const double u_max = 3.0;
  const StepFn step = [dt](double x, double v, double u) {
    return std::make_pair(x + v * dt + 0.5 * u * dt * dt, v + u * dt);
  };
  const UnsafeFn unsafe = [](double x, double) { return x > 10.0; };

  PreimageGrid grid;
  grid.x_min = 0.0;
  grid.x_max = 12.0;
  grid.v_min = 0.0;
  grid.v_max = 15.0;
  grid.nx = 60;
  grid.nv = 40;
  const auto result = compute_boundary_grid(
      grid, step, unsafe, sample_controls(-6.0, u_max, 19));

  for (std::size_t j = 0; j < grid.nv; ++j) {
    for (std::size_t i = 0; i < grid.nx; ++i) {
      const double x = grid.x_at(i);
      const double v = grid.v_at(j);
      RegionLabel expected;
      if (x > 10.0) {
        expected = RegionLabel::kUnsafe;
      } else if (x + v * dt + 0.5 * u_max * dt * dt > 10.0) {
        expected = RegionLabel::kBoundary;
      } else {
        expected = RegionLabel::kSafe;
      }
      ASSERT_EQ(result.at(i, j), expected) << "x=" << x << " v=" << v;
    }
  }
  EXPECT_GT(result.count(RegionLabel::kBoundary), 0u);
  EXPECT_GT(result.count(RegionLabel::kUnsafe), 0u);
  EXPECT_GT(result.count(RegionLabel::kSafe), 0u);
}

TEST(Preimage, LeftTurnSlackBandMatchesClosedForm) {
  // The scenario's closed-form X_b must contain every exact-preimage
  // state of the Eq. 6 unsafe set on the branch where their semantics
  // coincide: non-negative slack AND currently-overlapping passing
  // windows (the paper's own branch). Elsewhere the production monitor
  // deliberately deviates — it guards collisions via resolvability
  // rather than Eq. 6 set entry (see DESIGN.md deviations).
  const vehicle::VehicleLimits ego{0.0, 15.0, -6.0, 3.0};
  const vehicle::VehicleLimits c1{2.0, 15.0, -3.0, 3.0};
  const double dt = 0.05;
  const scenario::LeftTurnScenario scn(scenario::LeftTurnGeometry{}, ego, c1,
                                       dt);
  const util::Interval tau1{2.0, 6.0};
  const vehicle::DoubleIntegrator dyn(ego);

  const StepFn step = [&](double x, double v, double u) {
    const auto s = dyn.step({x, v}, u, dt);
    return std::make_pair(s.p, s.v);
  };
  const UnsafeFn unsafe = [&](double x, double v) {
    return scn.in_unsafe_set(dt, x, v, tau1);
  };

  PreimageGrid grid;
  grid.x_min = -30.0;
  grid.x_max = 5.0;
  grid.v_min = 0.0;
  grid.v_max = 15.0;
  grid.nx = 120;
  grid.nv = 60;
  const auto result = compute_boundary_grid(
      grid, step, unsafe, sample_controls(ego.a_min, ego.a_max, 33));

  std::size_t preimage_states = 0;
  for (std::size_t j = 0; j < grid.nv; ++j) {
    for (std::size_t i = 0; i < grid.nx; ++i) {
      if (result.at(i, j) != RegionLabel::kBoundary) continue;
      const double x = grid.x_at(i);
      const double v = grid.v_at(j);
      if (scn.slack(x, v) < 0.0) continue;  // committed branch: different
      if (!scn.ego_passing_window(0.0, x, v).intersects(tau1)) {
        continue;  // no current overlap: resolvability branch, different
      }
      ++preimage_states;
      EXPECT_TRUE(scn.in_boundary_safe_set(0.0, x, v, tau1))
          << "closed form misses exact-preimage state x=" << x
          << " v=" << v;
    }
  }
  EXPECT_GT(preimage_states, 20u);  // the comparison is not vacuous
}

}  // namespace
}  // namespace cvsafe::core
