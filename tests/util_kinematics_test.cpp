#include "cvsafe/util/kinematics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "cvsafe/util/rng.hpp"

namespace cvsafe::util {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Quadratic, TwoRoots) {
  const auto r = solve_quadratic(1.0, -3.0, 2.0);  // roots 1, 2
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->lo, 1.0, 1e-12);
  EXPECT_NEAR(r->hi, 2.0, 1e-12);
}

TEST(Quadratic, NoRealRoot) {
  EXPECT_FALSE(solve_quadratic(1.0, 0.0, 1.0).has_value());
}

TEST(Quadratic, LinearDegenerate) {
  const auto r = solve_quadratic(0.0, 2.0, -4.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->lo, 2.0, 1e-12);
  EXPECT_NEAR(r->hi, 2.0, 1e-12);
  EXPECT_FALSE(solve_quadratic(0.0, 0.0, 1.0).has_value());
}

TEST(Quadratic, NumericalStabilitySmallA) {
  // x^2 - 1e8 x + 1 = 0: naive formula loses the small root.
  const auto r = solve_quadratic(1.0, -1e8, 1.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->lo, 1e-8, 1e-14);
  EXPECT_NEAR(r->hi, 1e8, 1.0);
}

TEST(BrakingDistance, MatchesClosedForm) {
  EXPECT_NEAR(braking_distance(10.0, -5.0), 10.0, 1e-12);
  EXPECT_NEAR(braking_distance(0.0, -5.0), 0.0, 1e-12);
}

TEST(Displacement, PureCruise) {
  EXPECT_NEAR(displacement_with_speed_cap(8.0, 0.0, 2.0, 20.0), 16.0, 1e-12);
}

TEST(Displacement, UnsaturatedAcceleration) {
  // v=5, a=2, dt=1, cap 20 (not reached): d = 5 + 1 = 6.
  EXPECT_NEAR(displacement_with_speed_cap(5.0, 2.0, 1.0, 20.0), 6.0, 1e-12);
}

TEST(Displacement, SaturatesAtCap) {
  // v=8, a=2, cap 10: reaches cap after 1 s (9 m), then cruises 10 m/s.
  EXPECT_NEAR(displacement_with_speed_cap(8.0, 2.0, 2.0, 10.0), 19.0, 1e-12);
}

TEST(Displacement, DecelerationToFloor) {
  // v=10, a=-5, floor 0: stops after 2 s having moved 10 m; stays stopped.
  EXPECT_NEAR(displacement_with_speed_cap(10.0, -5.0, 3.0, 0.0), 10.0,
              1e-12);
}

TEST(Displacement, CapAlreadyBinding) {
  // Accelerating while at the cap: cruise.
  EXPECT_NEAR(displacement_with_speed_cap(10.0, 3.0, 2.0, 10.0), 20.0,
              1e-12);
}

TEST(SpeedAfter, Branches) {
  EXPECT_NEAR(speed_after(5.0, 2.0, 1.0, 20.0), 7.0, 1e-12);
  EXPECT_NEAR(speed_after(8.0, 2.0, 2.0, 10.0), 10.0, 1e-12);
  EXPECT_NEAR(speed_after(10.0, -5.0, 3.0, 0.0), 0.0, 1e-12);
  EXPECT_NEAR(speed_after(7.0, 0.0, 3.0, 20.0), 7.0, 1e-12);
}

TEST(TimeToTravel, ZeroDistance) {
  EXPECT_EQ(time_to_travel(0.0, 5.0, 1.0, 20.0), 0.0);
  EXPECT_EQ(time_to_travel(-1.0, 5.0, 1.0, 20.0), 0.0);
}

TEST(TimeToTravel, PureCruise) {
  EXPECT_NEAR(time_to_travel(10.0, 5.0, 0.0, 20.0), 2.0, 1e-12);
  EXPECT_EQ(time_to_travel(10.0, 0.0, 0.0, 20.0), kInf);
}

TEST(TimeToTravel, RampPhaseOnly) {
  // v=0, a=2: d = t^2 -> 9 m in 3 s.
  EXPECT_NEAR(time_to_travel(9.0, 0.0, 2.0, 100.0), 3.0, 1e-12);
}

TEST(TimeToTravel, RampThenCruise) {
  // v=8, a=2, cap 10: ramp covers 9 m in 1 s, remaining 11 m at 10 m/s.
  EXPECT_NEAR(time_to_travel(20.0, 8.0, 2.0, 10.0), 1.0 + 1.1, 1e-12);
}

TEST(TimeToTravel, DecelerationStopsShort) {
  // v=10, a=-5 stops after 10 m; 20 m unreachable with floor 0.
  EXPECT_EQ(time_to_travel(20.0, 10.0, -5.0, 0.0), kInf);
}

TEST(TimeToTravel, DecelerationToPositiveFloor) {
  // v=10, a=-5, floor 5: ramp covers 7.5 m in 1 s, then 5 m/s cruise.
  EXPECT_NEAR(time_to_travel(12.5, 10.0, -5.0, 5.0), 2.0, 1e-12);
}

// Property: time_to_travel and displacement_with_speed_cap are inverse:
// traveling for the returned time covers exactly the distance.
TEST(KinematicsProperty, TravelTimeMatchesDisplacement) {
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.uniform(0.0, 15.0);
    const double a = rng.uniform(-4.0, 4.0);
    const double cap = a >= 0.0 ? rng.uniform(v, 20.0)
                                : rng.uniform(0.0, v);
    const double d = rng.uniform(0.1, 60.0);
    const double t = time_to_travel(d, v, a, cap);
    if (!std::isfinite(t)) {
      // Unreachable: displacement must stay below d forever (check far out).
      EXPECT_LT(displacement_with_speed_cap(v, a, 1000.0, cap), d + 1e-9);
      continue;
    }
    const double covered = displacement_with_speed_cap(v, a, t, cap);
    EXPECT_NEAR(covered, d, 1e-6) << "v=" << v << " a=" << a << " cap=" << cap
                                  << " d=" << d;
  }
}

// Property: time_to_travel is monotone — more distance takes longer,
// higher initial speed is never slower.
TEST(KinematicsProperty, TravelTimeMonotonicity) {
  Rng rng(8);
  for (int i = 0; i < 3000; ++i) {
    const double v = rng.uniform(0.0, 15.0);
    const double a = rng.uniform(0.1, 4.0);
    const double cap = rng.uniform(v + 0.1, 20.0);
    const double d1 = rng.uniform(0.1, 40.0);
    const double d2 = d1 + rng.uniform(0.1, 20.0);
    EXPECT_LE(time_to_travel(d1, v, a, cap), time_to_travel(d2, v, a, cap));
    const double v2 = v + rng.uniform(0.0, 3.0);
    const double cap2 = std::max(cap, v2);
    EXPECT_GE(time_to_travel(d1, v, a, cap) + 1e-12,
              time_to_travel(d1, v2, a, cap2));
  }
}

}  // namespace
}  // namespace cvsafe::util
