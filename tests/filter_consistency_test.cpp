#include "cvsafe/filter/consistency.hpp"

#include <gtest/gtest.h>

#include "cvsafe/filter/kalman.hpp"
#include "cvsafe/sensing/sensor.hpp"
#include "cvsafe/util/rng.hpp"
#include "cvsafe/vehicle/accel_profile.hpp"
#include "cvsafe/vehicle/dynamics.hpp"

namespace cvsafe::filter {
namespace {

TEST(NisMonitor, StartsClean) {
  NisMonitor m;
  EXPECT_EQ(m.count(), 0u);
  EXPECT_FALSE(m.diverged());
}

TEST(NisMonitor, ComputesNisValue) {
  NisMonitor m(1.0, 8.0, 1);
  // Unit covariance, innovation (3, 4): NIS = 25.
  const double nis = m.update({3.0, 4.0}, util::Mat2::identity());
  EXPECT_NEAR(nis, 25.0, 1e-12);
  EXPECT_NEAR(m.mean_nis(), 25.0, 1e-12);
}

TEST(NisMonitor, ScalesWithCovariance) {
  NisMonitor m(1.0, 8.0, 1);
  // Covariance 25 I with the same innovation: NIS = 1.
  EXPECT_NEAR(m.update({3.0, 4.0}, util::Mat2::identity() * 25.0), 1.0,
              1e-12);
}

TEST(NisMonitor, RespectsWarmup) {
  NisMonitor m(1.0, 8.0, /*warmup=*/5);
  for (int i = 0; i < 4; ++i) {
    m.update({10.0, 0.0}, util::Mat2::identity());
    EXPECT_FALSE(m.diverged());  // huge NIS but still warming up
  }
  m.update({10.0, 0.0}, util::Mat2::identity());
  EXPECT_TRUE(m.diverged());
}

TEST(NisMonitor, ResetClearsState) {
  NisMonitor m(1.0, 8.0, 1);
  m.update({10.0, 0.0}, util::Mat2::identity());
  EXPECT_TRUE(m.diverged());
  m.reset();
  EXPECT_EQ(m.count(), 0u);
  EXPECT_FALSE(m.diverged());
}

TEST(NisMonitor, ConsistentGaussianInnovationsStayCalm) {
  NisMonitor m(0.05, 8.0, 10);
  util::Rng rng(1);
  // Innovations drawn from the claimed covariance (diag(4, 1)).
  const util::Mat2 s = util::Mat2::diagonal(4.0, 1.0);
  for (int i = 0; i < 2000; ++i) {
    m.update({rng.normal(0.0, 2.0), rng.normal(0.0, 1.0)}, s);
  }
  EXPECT_FALSE(m.diverged());
  EXPECT_NEAR(m.mean_nis(), 2.0, 0.8);  // E[NIS] = measurement dim
}

TEST(KalmanNis, ConsistentFilterIsNotFlagged) {
  const vehicle::VehicleLimits limits{2.0, 15.0, -3.0, 3.0};
  KalmanFilter kf({0.1, 1.0, 1.0, 1.0, 3.0, 64});
  util::Rng rng(2);
  vehicle::DoubleIntegrator dyn(limits);
  vehicle::VehicleState s{-55.0, 9.0};
  const auto profile =
      vehicle::AccelProfile::random(300, 0.05, s.v, limits, {}, rng);
  sensing::Sensor sensor(sensing::SensorConfig::uniform(1.0, 0.1));
  for (std::size_t step = 0; step < 300; ++step) {
    const double t = static_cast<double>(step) * 0.05;
    if (const auto r = sensor.sense(
            vehicle::VehicleSnapshot{t, s, profile.at(step)}, rng)) {
      kf.update(*r);
    }
    s = dyn.step(s, profile.at(step), 0.05);
  }
  EXPECT_FALSE(kf.nis().diverged());
}

TEST(KalmanNis, GrosslyUnderstatedNoiseIsFlagged) {
  // Filter configured for delta = 0.05 while the true sensor noise is 3.0:
  // the claimed covariance is ~3600x too small -> NIS explodes.
  const vehicle::VehicleLimits limits{2.0, 15.0, -3.0, 3.0};
  KalmanFilter kf({0.1, 0.05, 0.05, 0.05, 3.0, 64});
  util::Rng rng(3);
  vehicle::DoubleIntegrator dyn(limits);
  vehicle::VehicleState s{-55.0, 9.0};
  const auto profile =
      vehicle::AccelProfile::random(300, 0.05, s.v, limits, {}, rng);
  sensing::Sensor sensor(sensing::SensorConfig::uniform(3.0, 0.1));
  for (std::size_t step = 0; step < 300; ++step) {
    const double t = static_cast<double>(step) * 0.05;
    if (const auto r = sensor.sense(
            vehicle::VehicleSnapshot{t, s, profile.at(step)}, rng)) {
      kf.update(*r);
    }
    s = dyn.step(s, profile.at(step), 0.05);
  }
  EXPECT_TRUE(kf.nis().diverged());
}

TEST(KalmanAdaptive, InflatesQUnderModelMismatch) {
  // Understated PROCESS model: the filter believes the vehicle barely
  // maneuvers (delta_a = 0.01 -> Q ~ 0) while it actually swings within
  // +-3 m/s^2, so the rigid filter over-smooths and lags. The adaptive
  // filter detects the inconsistency, inflates Q, and tracks better.
  const vehicle::VehicleLimits limits{2.0, 15.0, -3.0, 3.0};
  KalmanConfig rigid_cfg{0.1, 3.0, 3.0, 0.01, 3.0, 64};
  KalmanConfig adaptive_cfg = rigid_cfg;
  adaptive_cfg.adaptive = true;
  KalmanFilter rigid(rigid_cfg);
  KalmanFilter adaptive(adaptive_cfg);

  util::Rng rng(4);
  vehicle::DoubleIntegrator dyn(limits);
  vehicle::VehicleState s{-55.0, 9.0};
  const auto profile =
      vehicle::AccelProfile::random(600, 0.05, s.v, limits, {}, rng);
  sensing::Sensor sensor(sensing::SensorConfig::uniform(3.0, 0.1));
  double err_rigid = 0.0, err_adaptive = 0.0;
  int n = 0;
  for (std::size_t step = 0; step < 600; ++step) {
    const double t = static_cast<double>(step) * 0.05;
    if (const auto r = sensor.sense(
            vehicle::VehicleSnapshot{t, s, profile.at(step)}, rng)) {
      // Both filters absorb the identical reading stream.
      rigid.update(*r);
      adaptive.update(*r);
      if (t > 10.0) {
        err_rigid += std::abs(rigid.state_at(t).x - s.p);
        err_adaptive += std::abs(adaptive.state_at(t).x - s.p);
        ++n;
      }
    }
    s = dyn.step(s, profile.at(step), 0.05);
  }
  ASSERT_GT(n, 0);
  EXPECT_GT(adaptive.q_scale(), 1.5);          // it actually reacted
  EXPECT_LT(err_adaptive, err_rigid);          // and it helped
  EXPECT_EQ(rigid.q_scale(), 1.0);             // rigid never adapts
}

TEST(KalmanNis, RollbackResetsTheMonitor) {
  KalmanFilter kf({0.1, 1.0, 1.0, 1.0, 3.0, 64});
  kf.update({0.0, 0.0, 5.0, 0.0});
  kf.update({0.1, 0.5, 5.0, 0.0});
  EXPECT_GT(kf.nis().count(), 0u);
  kf.correct_with_message(0.2, 1.0, 5.0, 0.0);
  EXPECT_EQ(kf.nis().count(), 0u);
}

}  // namespace
}  // namespace cvsafe::filter
