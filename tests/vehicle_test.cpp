#include <gtest/gtest.h>

#include "cvsafe/util/rng.hpp"
#include "cvsafe/vehicle/accel_profile.hpp"
#include "cvsafe/vehicle/dynamics.hpp"
#include "cvsafe/vehicle/trajectory.hpp"

namespace cvsafe::vehicle {
namespace {

const VehicleLimits kLimits{0.0, 15.0, -6.0, 3.0};

TEST(VehicleLimits, ClampAccel) {
  EXPECT_EQ(kLimits.clamp_accel(10.0), 3.0);
  EXPECT_EQ(kLimits.clamp_accel(-10.0), -6.0);
  EXPECT_EQ(kLimits.clamp_accel(1.5), 1.5);
}

TEST(VehicleLimits, Validity) {
  EXPECT_TRUE(kLimits.valid());
  EXPECT_FALSE((VehicleLimits{5.0, 1.0, -1.0, 1.0}).valid());
  EXPECT_FALSE((VehicleLimits{0.0, 10.0, 1.0, 2.0}).valid());
}

TEST(DoubleIntegrator, MatchesMatrixFormAwayFromLimits) {
  const DoubleIntegrator dyn(kLimits);
  const VehicleState s{0.0, 5.0};
  const VehicleState a = dyn.step(s, 1.0, 0.05);
  const VehicleState b = dyn.step_unsaturated(s, 1.0, 0.05);
  EXPECT_NEAR(a.p, b.p, 1e-12);
  EXPECT_NEAR(a.v, b.v, 1e-12);
  EXPECT_NEAR(b.p, 5.0 * 0.05 + 0.5 * 1.0 * 0.05 * 0.05, 1e-12);
  EXPECT_NEAR(b.v, 5.05, 1e-12);
}

TEST(DoubleIntegrator, SaturatesAtMaxSpeed) {
  const DoubleIntegrator dyn(kLimits);
  VehicleState s{0.0, 14.9};
  s = dyn.step(s, 3.0, 1.0);
  EXPECT_NEAR(s.v, 15.0, 1e-12);
  // Position: ramp to 15 in 1/30 s, then cruise.
  const double t_hit = 0.1 / 3.0;
  const double expected =
      14.9 * t_hit + 0.5 * 3.0 * t_hit * t_hit + 15.0 * (1.0 - t_hit);
  EXPECT_NEAR(s.p, expected, 1e-12);
}

TEST(DoubleIntegrator, StopsAtZero) {
  const DoubleIntegrator dyn(kLimits);
  VehicleState s{0.0, 2.0};
  s = dyn.step(s, -6.0, 1.0);
  EXPECT_NEAR(s.v, 0.0, 1e-12);
  EXPECT_NEAR(s.p, 2.0 * 2.0 / (2.0 * 6.0), 1e-12);  // v^2 / (2|a|)
  // Staying stopped under continued braking.
  s = dyn.step(s, -6.0, 1.0);
  EXPECT_NEAR(s.v, 0.0, 1e-12);
  EXPECT_NEAR(s.p, 1.0 / 3.0, 1e-12);
}

TEST(DoubleIntegrator, ClampsCommand) {
  const DoubleIntegrator dyn(kLimits);
  const VehicleState a = dyn.step({0.0, 5.0}, 100.0, 0.1);
  const VehicleState b = dyn.step({0.0, 5.0}, 3.0, 0.1);
  EXPECT_EQ(a.p, b.p);
  EXPECT_EQ(a.v, b.v);
}

// Property: many small steps == one large step under constant command
// (exact integration, not Euler).
TEST(DoubleIntegratorProperty, StepComposition) {
  const DoubleIntegrator dyn(kLimits);
  util::Rng rng(5);
  for (int trial = 0; trial < 500; ++trial) {
    const double a = rng.uniform(-6.0, 3.0);
    VehicleState fine{rng.uniform(-20, 20), rng.uniform(0, 15)};
    VehicleState coarse = fine;
    for (int i = 0; i < 20; ++i) fine = dyn.step(fine, a, 0.05);
    coarse = dyn.step(coarse, a, 1.0);
    EXPECT_NEAR(fine.p, coarse.p, 1e-9);
    EXPECT_NEAR(fine.v, coarse.v, 1e-9);
  }
}

TEST(Trajectory, InterpolatesStates) {
  Trajectory traj;
  traj.push({0.0, {0.0, 1.0}, 0.0});
  traj.push({1.0, {2.0, 3.0}, 0.0});
  const VehicleState mid = traj.at(0.5);
  EXPECT_NEAR(mid.p, 1.0, 1e-12);
  EXPECT_NEAR(mid.v, 2.0, 1e-12);
  EXPECT_NEAR(traj.at(-1.0).p, 0.0, 1e-12);  // clamped
  EXPECT_NEAR(traj.at(9.0).p, 2.0, 1e-12);
}

TEST(Trajectory, FirstTimeAtPosition) {
  Trajectory traj;
  traj.push({0.0, {0.0, 10.0}, 0.0});
  traj.push({1.0, {10.0, 10.0}, 0.0});
  traj.push({2.0, {20.0, 10.0}, 0.0});
  EXPECT_NEAR(traj.first_time_at_position(5.0), 0.5, 1e-12);
  EXPECT_NEAR(traj.first_time_at_position(15.0), 1.5, 1e-12);
  EXPECT_LT(traj.first_time_at_position(25.0), 0.0);  // never reached
  EXPECT_NEAR(traj.first_time_at_position(-1.0), 0.0, 1e-12);
}

TEST(Trajectory, SeriesExtraction) {
  Trajectory traj;
  traj.push({0.0, {1.0, 2.0}, 0.0});
  traj.push({1.0, {3.0, 4.0}, 0.0});
  EXPECT_EQ(traj.positions(), (std::vector<double>{1.0, 3.0}));
  EXPECT_EQ(traj.velocities(), (std::vector<double>{2.0, 4.0}));
}

TEST(AccelProfile, ConstantProfile) {
  const auto p = AccelProfile::constant(5, 1.5);
  EXPECT_EQ(p.size(), 5u);
  EXPECT_EQ(p.at(0), 1.5);
  EXPECT_EQ(p.at(4), 1.5);
  EXPECT_EQ(p.at(100), 1.5);  // repeats last
}

// Property: random profiles respect the acceleration limits and keep the
// integrated speed inside the velocity limits.
TEST(AccelProfileProperty, RespectsLimits) {
  util::Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    const double v0 = rng.uniform(kLimits.v_min, kLimits.v_max);
    const auto profile =
        AccelProfile::random(400, 0.05, v0, kLimits, {}, rng);
    double v = v0;
    for (std::size_t i = 0; i < profile.size(); ++i) {
      const double a = profile.at(i);
      ASSERT_GE(a, kLimits.a_min - 1e-9);
      ASSERT_LE(a, kLimits.a_max + 1e-9);
      v += a * 0.05;
      ASSERT_GE(v, kLimits.v_min - 1e-9);
      ASSERT_LE(v, kLimits.v_max + 1e-9);
    }
  }
}

// Property: profiles vary across seeds (the workload is actually random).
TEST(AccelProfileProperty, VariesAcrossSeeds) {
  util::Rng rng1(1), rng2(2);
  const auto p1 = AccelProfile::random(100, 0.05, 8.0, kLimits, {}, rng1);
  const auto p2 = AccelProfile::random(100, 0.05, 8.0, kLimits, {}, rng2);
  EXPECT_NE(p1.values(), p2.values());
}

}  // namespace
}  // namespace cvsafe::vehicle
