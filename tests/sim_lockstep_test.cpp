// Lockstep batching equivalence: evaluating a single-network NN blueprint
// with one NnPlanner::plan_batch call per shard-step must be bit-identical
// to dispatching the planner once per episode per step. This is the
// correctness contract of BatchMode::kAuto — the throughput path is only
// allowed to exist because this test holds.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "cvsafe/nn/mlp.hpp"
#include "cvsafe/sim/left_turn.hpp"

namespace {

using namespace cvsafe;

void expect_stats_equal(const sim::BatchStats& a, const sim::BatchStats& b) {
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.safe_count, b.safe_count);
  EXPECT_EQ(a.reached_count, b.reached_count);
  EXPECT_EQ(a.total_steps, b.total_steps);
  EXPECT_EQ(a.emergency_steps, b.emergency_steps);
  EXPECT_EQ(a.mean_eta, b.mean_eta);              // exact
  EXPECT_EQ(a.mean_reach_time, b.mean_reach_time);  // exact
  ASSERT_EQ(a.etas.size(), b.etas.size());
  for (std::size_t i = 0; i < a.etas.size(); ++i) {
    EXPECT_EQ(a.etas[i], b.etas[i]) << "episode " << i;  // exact
  }
}

sim::AgentBlueprint nn_blueprint(const sim::LeftTurnSimConfig& cfg,
                                 sim::AgentConfig agent) {
  util::Rng net_rng(42);
  sim::AgentBlueprint bp;
  bp.name = "nn";
  bp.scenario = cfg.make_scenario();
  bp.net = std::make_shared<const nn::Mlp>(nn::MlpSpec{{4, 16, 16, 1}},
                                           net_rng);
  bp.sensor = cfg.sensor;
  bp.config = agent;
  return bp;
}

TEST(SimLockstep, MatchesPerEpisodeBitExactly) {
  sim::LeftTurnSimConfig cfg = sim::LeftTurnSimConfig::paper_defaults();
  cfg.comm = comm::CommConfig::delayed(0.4, 0.25);

  for (const auto& agent : {sim::AgentConfig::pure_nn(),
                            sim::AgentConfig::basic_compound(),
                            sim::AgentConfig::ultimate_compound()}) {
    const auto bp = nn_blueprint(cfg, agent);
    const auto per_episode = sim::run_left_turn_batch(
        cfg, bp, /*n=*/10, /*base_seed=*/601, /*threads=*/2,
        sim::BatchMode::kPerEpisode);
    const auto lockstep = sim::run_left_turn_batch(
        cfg, bp, /*n=*/10, /*base_seed=*/601, /*threads=*/2,
        sim::BatchMode::kLockstep);
    expect_stats_equal(per_episode, lockstep);
  }
}

TEST(SimLockstep, ShardingDoesNotChangeResults) {
  // Worker count only shards the lockstep batches differently; the
  // per-episode streams must stay bit-identical.
  sim::LeftTurnSimConfig cfg = sim::LeftTurnSimConfig::paper_defaults();
  cfg.comm = comm::CommConfig::messages_lost();
  cfg.sensor = sensing::SensorConfig::uniform(2.0);
  const auto bp = nn_blueprint(cfg, sim::AgentConfig::ultimate_compound());

  const auto one = sim::run_left_turn_batch(cfg, bp, 7, 701, /*threads=*/1,
                                            sim::BatchMode::kLockstep);
  const auto four = sim::run_left_turn_batch(cfg, bp, 7, 701, /*threads=*/4,
                                             sim::BatchMode::kLockstep);
  expect_stats_equal(one, four);
}

TEST(SimLockstep, AutoFallsBackForNonBatchableStacks) {
  // Expert and ensemble blueprints are not lockstep-eligible; kAuto must
  // produce exactly the per-episode results for them.
  sim::LeftTurnSimConfig cfg = sim::LeftTurnSimConfig::paper_defaults();
  cfg.comm = comm::CommConfig::delayed(0.3, 0.25);
  sim::AgentBlueprint bp;
  bp.name = "expert";
  bp.scenario = cfg.make_scenario();
  bp.sensor = cfg.sensor;
  bp.config = sim::AgentConfig::ultimate_compound();
  bp.config.use_expert_planner = true;

  const auto auto_mode = sim::run_left_turn_batch(cfg, bp, 6, 801,
                                                  /*threads=*/2,
                                                  sim::BatchMode::kAuto);
  const auto per_episode = sim::run_left_turn_batch(
      cfg, bp, 6, 801, /*threads=*/2, sim::BatchMode::kPerEpisode);
  expect_stats_equal(auto_mode, per_episode);
}

}  // namespace
