// Layer / activation / backpropagation correctness, including the
// numerical gradient check (DESIGN.md invariant 6).

#include <gtest/gtest.h>

#include "cvsafe/nn/activation.hpp"
#include "cvsafe/nn/gradcheck.hpp"
#include "cvsafe/nn/layer.hpp"
#include "cvsafe/nn/loss.hpp"
#include "cvsafe/nn/mlp.hpp"

namespace cvsafe::nn {
namespace {

TEST(Activation, ReluValuesAndDerivative) {
  const Matrix z(1, 4, {-2.0, -0.0, 0.5, 3.0});
  const Matrix y = apply_activation(Activation::kRelu, z);
  EXPECT_EQ(y.data(), (std::vector<double>{0.0, 0.0, 0.5, 3.0}));
  const Matrix d = activation_derivative(Activation::kRelu, z);
  EXPECT_EQ(d.data(), (std::vector<double>{0.0, 0.0, 1.0, 1.0}));
}

TEST(Activation, TanhBoundsAndDerivative) {
  const Matrix z(1, 3, {-10.0, 0.0, 10.0});
  const Matrix y = apply_activation(Activation::kTanh, z);
  EXPECT_NEAR(y(0, 0), -1.0, 1e-6);
  EXPECT_EQ(y(0, 1), 0.0);
  EXPECT_NEAR(y(0, 2), 1.0, 1e-6);
  const Matrix d = activation_derivative(Activation::kTanh, z);
  EXPECT_NEAR(d(0, 1), 1.0, 1e-12);
  EXPECT_LT(d(0, 0), 1e-6);
}

TEST(Activation, SigmoidRange) {
  const Matrix z(1, 3, {-10.0, 0.0, 10.0});
  const Matrix y = apply_activation(Activation::kSigmoid, z);
  EXPECT_NEAR(y(0, 0), 0.0, 1e-4);
  EXPECT_NEAR(y(0, 1), 0.5, 1e-12);
  EXPECT_NEAR(y(0, 2), 1.0, 1e-4);
}

TEST(Activation, NameRoundTrip) {
  for (auto a : {Activation::kIdentity, Activation::kRelu, Activation::kTanh,
                 Activation::kSigmoid}) {
    EXPECT_EQ(activation_from_name(activation_name(a)), a);
  }
  EXPECT_THROW(activation_from_name("bogus"), std::invalid_argument);
}

TEST(DenseLayer, ForwardKnownValues) {
  // y = x W^T + b with identity activation.
  DenseLayer layer(Matrix(2, 3, {1, 0, 0, 0, 1, 0}),
                   Matrix::row_vector({10, 20}), Activation::kIdentity);
  const Matrix x(1, 3, {1, 2, 3});
  const Matrix y = layer.infer(x);
  EXPECT_EQ(y(0, 0), 11.0);
  EXPECT_EQ(y(0, 1), 22.0);
}

TEST(DenseLayer, ForwardAndInferAgree) {
  util::Rng rng(1);
  DenseLayer layer(4, 3, Activation::kTanh, rng);
  Matrix x(5, 4);
  for (auto& v : x.data()) v = rng.uniform(-1, 1);
  const Matrix a = layer.forward(x);
  const Matrix b = layer.infer(x);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(Mlp, ShapesAndParameterCount) {
  util::Rng rng(2);
  Mlp net(MlpSpec{{4, 8, 8, 1}, Activation::kTanh, Activation::kIdentity},
          rng);
  EXPECT_EQ(net.input_dim(), 4u);
  EXPECT_EQ(net.output_dim(), 1u);
  EXPECT_EQ(net.layer_count(), 3u);
  EXPECT_EQ(net.parameter_count(),
            (4u * 8 + 8) + (8u * 8 + 8) + (8u * 1 + 1));
}

TEST(Mlp, PredictMatchesInfer) {
  util::Rng rng(3);
  Mlp net(MlpSpec{{3, 5, 2}, Activation::kRelu, Activation::kIdentity}, rng);
  const std::vector<double> x{0.1, -0.2, 0.3};
  const auto y = net.predict(x);
  const Matrix ym = net.infer(Matrix::row_vector(x));
  ASSERT_EQ(y.size(), 2u);
  EXPECT_EQ(y[0], ym(0, 0));
  EXPECT_EQ(y[1], ym(0, 1));
}

TEST(Loss, MseKnownValue) {
  const Matrix pred(1, 2, {1.0, 2.0});
  const Matrix target(1, 2, {0.0, 4.0});
  EXPECT_NEAR(mse_loss(pred, target), (1.0 + 4.0) / 2.0, 1e-12);
  const Matrix g = mse_gradient(pred, target);
  EXPECT_NEAR(g(0, 0), 1.0, 1e-12);   // 2 * 1 / 2
  EXPECT_NEAR(g(0, 1), -2.0, 1e-12);  // 2 * -2 / 2
}

TEST(Loss, HuberMatchesMseInside) {
  const Matrix pred(1, 2, {0.1, -0.2});
  const Matrix target(1, 2, {0.0, 0.0});
  EXPECT_NEAR(huber_loss(pred, target, 10.0),
              0.5 * mse_loss(pred, target), 1e-12);
}

TEST(Loss, HuberLinearOutside) {
  const Matrix pred(1, 1, {100.0});
  const Matrix target(1, 1, {0.0});
  EXPECT_NEAR(huber_loss(pred, target, 1.0), 1.0 * (100.0 - 0.5), 1e-9);
  EXPECT_NEAR(huber_gradient(pred, target, 1.0)(0, 0), 1.0, 1e-12);
}

// ---- Gradient checks (the backbone invariant) ---------------------------

class GradCheckTest
    : public ::testing::TestWithParam<std::tuple<Activation, int>> {};

TEST_P(GradCheckTest, AnalyticMatchesNumeric) {
  const auto [act, depth] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(depth) * 100 +
                static_cast<std::uint64_t>(act));
  std::vector<std::size_t> sizes{4};
  for (int i = 0; i < depth; ++i) sizes.push_back(6);
  sizes.push_back(2);
  Mlp net(MlpSpec{sizes, act, Activation::kIdentity}, rng);

  Matrix x(7, 4), y(7, 2);
  for (auto& v : x.data()) v = rng.uniform(-1, 1);
  for (auto& v : y.data()) v = rng.uniform(-1, 1);

  const auto result = check_gradients(net, x, y, 1e-6, 1e-4);
  EXPECT_TRUE(result.passed)
      << "max relative error " << result.max_rel_error;
}

INSTANTIATE_TEST_SUITE_P(
    ActivationsAndDepths, GradCheckTest,
    ::testing::Combine(::testing::Values(Activation::kIdentity,
                                         Activation::kTanh,
                                         Activation::kSigmoid),
                       ::testing::Values(1, 2, 3)));

// ReLU gradchecked separately with inputs away from the kink.
TEST(GradCheck, ReluAwayFromKink) {
  util::Rng rng(77);
  Mlp net(MlpSpec{{3, 8, 1}, Activation::kRelu, Activation::kIdentity}, rng);
  Matrix x(5, 3), y(5, 1);
  for (auto& v : x.data()) v = rng.uniform(0.5, 1.5);
  for (auto& v : y.data()) v = rng.uniform(-1, 1);
  const auto result = check_gradients(net, x, y, 1e-6, 1e-3);
  EXPECT_TRUE(result.passed)
      << "max relative error " << result.max_rel_error;
}

}  // namespace
}  // namespace cvsafe::nn
