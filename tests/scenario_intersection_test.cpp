#include "cvsafe/scenario/intersection.hpp"

#include <gtest/gtest.h>

#include "cvsafe/eval/intersection_sim.hpp"

namespace cvsafe::scenario {
namespace {

const vehicle::VehicleLimits kEgo{0.0, 15.0, -6.0, 3.0};
constexpr double kDt = 0.05;

IntersectionScenario make_scenario() {
  return IntersectionScenario(IntersectionGeometry{}, kEgo, kDt);
}

IntersectionWorld world(double t, double p, double v,
                        util::IntervalSet tau_a = {},
                        util::IntervalSet tau_b = {}) {
  IntersectionWorld w;
  w.t = t;
  w.ego = {p, v};
  w.tau_a = std::move(tau_a);
  w.tau_b = std::move(tau_b);
  return w;
}

TEST(IntersectionGeometry, Defaults) {
  const IntersectionGeometry g;
  EXPECT_TRUE(g.valid());
  EXPECT_LT(g.zone_a_back, g.zone_b_front);
}

TEST(Intersection, ZonePredicates) {
  const auto scn = make_scenario();
  EXPECT_TRUE(scn.in_zone_a(12.0));
  EXPECT_FALSE(scn.in_zone_a(15.0));
  EXPECT_TRUE(scn.in_zone_b(18.0));
  EXPECT_FALSE(scn.in_zone_b(14.0));
}

TEST(Intersection, FullThrottleOccupancy) {
  const auto scn = make_scenario();
  const auto occ = scn.full_throttle_occupancy(0.0, 0.0, 10.0, 10.0, 14.0);
  ASSERT_FALSE(occ.empty());
  EXPECT_GT(occ.lo, 0.5);  // ~1 s to the near zone at ~10-12 m/s
  EXPECT_LT(occ.lo, 1.1);
  EXPECT_GT(occ.hi, occ.lo);
  // Past the zone: empty.
  EXPECT_TRUE(
      scn.full_throttle_occupancy(0.0, 15.0, 10.0, 10.0, 14.0).empty());
}

TEST(Intersection, ResolvableByClearPlanOrStopping) {
  const auto scn = make_scenario();
  // Windows far in the future: full throttle clears both.
  EXPECT_TRUE(scn.resolvable(world(0.0, 0.0, 10.0,
                                   util::IntervalSet{{20.0, 25.0}},
                                   util::IntervalSet{{20.0, 25.0}})));
  // Imminent windows but far away / slow: can stop before zone A.
  EXPECT_TRUE(scn.resolvable(world(0.0, -20.0, 8.0,
                                   util::IntervalSet{{0.5, 10.0}},
                                   util::IntervalSet{{0.5, 10.0}})));
  // Fast and close with active windows: cannot stop, cannot clear.
  EXPECT_FALSE(scn.resolvable(world(0.0, 6.0, 14.0,
                                    util::IntervalSet{{0.5, 10.0}},
                                    util::IntervalSet{{0.5, 10.0}})));
}

TEST(Intersection, MedianGapIsAHoldingPosition) {
  const auto scn = make_scenario();
  // Ego waiting in the gap between the lanes with the far lane blocked:
  // resolvable by holding before zone B.
  EXPECT_TRUE(scn.resolvable(world(0.0, 14.5, 0.0, {},
                                   util::IntervalSet{{0.5, 8.0}})));
  // And the boundary set lets it sit there (stopped: no control reaches
  // unresolvability in one step).
  EXPECT_TRUE(scn.in_boundary_safe_set(
      world(0.0, 15.9, 2.0, {}, util::IntervalSet{{0.5, 8.0}})));
}

TEST(Intersection, BoundaryFiresBeforeCommitmentIntoBlockedZones) {
  const auto scn = make_scenario();
  const util::IntervalSet blocked{{0.0, 30.0}};
  // Approaching fast with both lanes blocked: the one-step preimage must
  // fire before stopping becomes impossible.
  bool fired = false;
  vehicle::DoubleIntegrator dyn(kEgo);
  vehicle::VehicleState ego{-25.0, 12.0};
  for (int step = 0; step < 400; ++step) {
    const double t = step * kDt;
    const auto w = world(t, ego.p, ego.v, blocked, blocked);
    if (scn.in_boundary_safe_set(w)) {
      fired = true;
      ego = dyn.step(ego, scn.emergency_accel(w), kDt);
    } else {
      ego = dyn.step(ego, kEgo.a_max, kDt);  // reckless otherwise
    }
    ASSERT_LE(ego.p, scn.geometry().zone_a_front + 1e-6)
        << "entered the blocked near lane";
  }
  EXPECT_TRUE(fired);
  EXPECT_LT(ego.v, 0.2);  // held at the stop line
}

TEST(Intersection, EmergencyCommitsWhenPlanIsClear) {
  const auto scn = make_scenario();
  // Clear full-throttle plan: emergency accelerates.
  EXPECT_EQ(scn.emergency_accel(world(0.0, 8.0, 12.0,
                                      util::IntervalSet{{20.0, 22.0}}, {})),
            kEgo.a_max);
  // Blocked: least braking toward the stop line.
  const double a = scn.emergency_accel(
      world(0.0, 0.0, 10.0, util::IntervalSet{{0.5, 30.0}}, {}));
  EXPECT_NEAR(a, -(10.0 * 10.0) / (2.0 * 10.0), 1e-9);
}

// End-to-end: the compound-wrapped reckless planner never collides on
// either lane, across disturbance settings, while the raw planner does.
TEST(IntersectionSim, RawPlannerCollides) {
  eval::IntersectionSimConfig config;
  std::size_t collisions = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    collisions +=
        eval::run_intersection_simulation(config, false, seed).collided;
  }
  EXPECT_GT(collisions, 8u);
}

TEST(IntersectionSim, CompoundNeverCollides) {
  for (const bool disturbed : {false, true}) {
    eval::IntersectionSimConfig config;
    if (disturbed) {
      config.comm = comm::CommConfig::delayed(0.6, 0.25);
      config.sensor = sensing::SensorConfig::uniform(2.0);
    }
    for (std::uint64_t seed = 1; seed <= 80; ++seed) {
      const auto r = eval::run_intersection_simulation(config, true, seed);
      ASSERT_FALSE(r.collided) << "seed " << seed
                               << " disturbed=" << disturbed;
    }
  }
}

TEST(IntersectionSim, CompoundReachesAndIntervenes) {
  eval::IntersectionSimConfig config;
  const auto stats = eval::run_intersection_batch(config, true, 60, 1, 0);
  EXPECT_EQ(stats.safe_count, stats.n);
  EXPECT_GT(stats.reached_count, 50u);
  EXPECT_GT(stats.emergency_steps, 0u);
  EXPECT_GT(stats.mean_eta, 0.0);
}

TEST(IntersectionSim, DeterministicGivenSeed) {
  eval::IntersectionSimConfig config;
  const auto a = eval::run_intersection_simulation(config, true, 9);
  const auto b = eval::run_intersection_simulation(config, true, 9);
  EXPECT_EQ(a.reach_time, b.reach_time);
  EXPECT_EQ(a.emergency_steps, b.emergency_steps);
}

}  // namespace
}  // namespace cvsafe::scenario
