// Batched-sweep equivalence: FleetConfig::batched_sweeps selects between
// the five-sweep shard-step (pump -> estimate -> reach -> gate/ladder ->
// plan -> advance over pool-resident SoA stacks) and the per-lane
// reference loop. The two paths must be byte-identical — same seed-ordered
// records, same BatchStats (eta order included), same metrics text — for
// every agent variant, worker count and pool capacity. The reference loop
// is itself pinned against the per-episode engine by sim_fleet_test, so
// this suite closes the chain batched == reference == per-episode.
//
// Registered in tests/CMakeLists.txt and therefore also in the tsan CTest
// preset: CI races the batched sweeps at 1/4/7 worker threads under
// ThreadSanitizer via this test.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "cvsafe/fault/fault_plan.hpp"
#include "cvsafe/filter/plausibility.hpp"
#include "cvsafe/nn/mlp.hpp"
#include "cvsafe/sim/engine.hpp"
#include "cvsafe/sim/fleet.hpp"
#include "cvsafe/sim/left_turn.hpp"

namespace {

using namespace cvsafe;

sim::AgentBlueprint nn_blueprint(const sim::LeftTurnSimConfig& cfg,
                                 sim::AgentConfig agent) {
  util::Rng net_rng(42);
  sim::AgentBlueprint bp;
  bp.name = "nn";
  bp.scenario = cfg.make_scenario();
  bp.net = std::make_shared<const nn::Mlp>(nn::MlpSpec{{4, 16, 16, 1}},
                                           net_rng);
  bp.sensor = cfg.sensor;
  bp.config = agent;
  return bp;
}

void expect_records_equal(const std::vector<sim::FleetRecord>& a,
                          const std::vector<sim::FleetRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].eta, b[i].eta) << "episode " << i;  // exact
    EXPECT_EQ(a[i].reach_time, b[i].reach_time) << "episode " << i;
    EXPECT_EQ(a[i].steps, b[i].steps) << "episode " << i;
    EXPECT_EQ(a[i].emergency_steps, b[i].emergency_steps)
        << "episode " << i;
    EXPECT_EQ(a[i].ladder_steps, b[i].ladder_steps) << "episode " << i;
    EXPECT_EQ(a[i].ladder_transitions, b[i].ladder_transitions)
        << "episode " << i;
    EXPECT_EQ(a[i].messages_accepted, b[i].messages_accepted)
        << "episode " << i;
    EXPECT_EQ(a[i].messages_rejected, b[i].messages_rejected)
        << "episode " << i;
    EXPECT_EQ(a[i].collided, b[i].collided) << "episode " << i;
    EXPECT_EQ(a[i].reached, b[i].reached) << "episode " << i;
  }
}

// The three stack shapes the sweeps must cover: no Kalman lanes at all,
// Kalman lanes on both estimators, and Kalman + pool-resident ladder
// under a hardened gate with payload corruption (every sweep active).
std::vector<sim::AgentConfig> sweep_variants() {
  std::vector<sim::AgentConfig> variants;
  variants.push_back(sim::AgentConfig::basic_compound());
  variants.push_back(sim::AgentConfig::ultimate_compound());
  sim::AgentConfig laddered = sim::AgentConfig::ultimate_compound();
  laddered.gate = filter::GateConfig::hardened();
  laddered.ladder = core::LadderConfig{};
  variants.push_back(laddered);
  return variants;
}

TEST(SimFleetSweeps, BatchedMatchesReferenceAcrossVariantsThreadsAndPools) {
  sim::LeftTurnSimConfig cfg = sim::LeftTurnSimConfig::paper_defaults();
  cfg.comm = comm::CommConfig::delayed(0.4, 0.25);
  cfg.faults = fault::FaultPlan::corruption();

  for (const auto& agent : sweep_variants()) {
    const auto bp = nn_blueprint(cfg, agent);

    sim::FleetConfig ref;
    ref.pool_capacity = 12;
    ref.threads = 2;
    ref.batched_sweeps = false;
    const auto reference =
        sim::run_left_turn_fleet_records(cfg, bp, 12, 901, ref);

    for (const std::size_t threads : {1u, 4u, 7u}) {
      // Pool 3 forces compact/refill churn through the SoA slot free
      // lists; 8192 is the production capacity (everything resident).
      for (const std::size_t pool : {3u, 64u, 8192u}) {
        sim::FleetConfig fc;
        fc.pool_capacity = pool;
        fc.threads = threads;
        fc.batched_sweeps = true;
        const auto batched =
            sim::run_left_turn_fleet_records(cfg, bp, 12, 901, fc);
        SCOPED_TRACE(::testing::Message()
                     << "threads=" << threads << " pool=" << pool);
        expect_records_equal(batched, reference);
      }
    }
  }
}

TEST(SimFleetSweeps, StatsAndMetricsByteIdentical) {
  sim::LeftTurnSimConfig cfg = sim::LeftTurnSimConfig::paper_defaults();
  cfg.comm = comm::CommConfig::delayed(0.4, 0.25);
  cfg.faults = fault::FaultPlan::corruption();
  sim::AgentConfig agent = sim::AgentConfig::ultimate_compound();
  agent.gate = filter::GateConfig::hardened();
  agent.ladder = core::LadderConfig{};
  const auto bp = nn_blueprint(cfg, agent);

  sim::FleetConfig ref;
  ref.threads = 2;
  ref.batched_sweeps = false;
  const auto reference = sim::run_left_turn_fleet(cfg, bp, 10, 902, ref);

  for (const std::size_t threads : {1u, 4u, 7u}) {
    sim::FleetConfig fc;
    fc.threads = threads;
    fc.batched_sweeps = true;
    const auto batched = sim::run_left_turn_fleet(cfg, bp, 10, 902, fc);
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    EXPECT_EQ(batched.stats.n, reference.stats.n);
    EXPECT_EQ(batched.stats.safe_count, reference.stats.safe_count);
    EXPECT_EQ(batched.stats.reached_count, reference.stats.reached_count);
    EXPECT_EQ(batched.stats.total_steps, reference.stats.total_steps);
    EXPECT_EQ(batched.stats.emergency_steps,
              reference.stats.emergency_steps);
    EXPECT_EQ(batched.stats.mean_eta, reference.stats.mean_eta);  // exact
    EXPECT_EQ(batched.stats.mean_reach_time,
              reference.stats.mean_reach_time);
    ASSERT_EQ(batched.stats.etas.size(), reference.stats.etas.size());
    for (std::size_t i = 0; i < reference.stats.etas.size(); ++i) {
      EXPECT_EQ(batched.stats.etas[i], reference.stats.etas[i])
          << "episode " << i;
    }
    EXPECT_EQ(batched.metrics.prometheus_text(),
              reference.metrics.prometheus_text());
  }
}

TEST(SimFleetSweeps, RejectionTalliesIdenticalAcrossPoolsAndEngines) {
  // Plausibility-gate accounting must be a pure function of the episode
  // seed: the per-episode accepted/rejected tallies — and therefore the
  // fleet totals — are identical across pool sizes and between the fleet
  // engine and the per-episode engine. A lane-compaction bug that
  // double-counts (or drops) a relocated episode's gate counters shifts
  // these totals and fails here.
  sim::LeftTurnSimConfig cfg = sim::LeftTurnSimConfig::paper_defaults();
  cfg.comm = comm::CommConfig::delayed(0.4, 0.25);
  cfg.faults = fault::FaultPlan::corruption();
  sim::AgentConfig agent = sim::AgentConfig::ultimate_compound();
  agent.gate = filter::GateConfig::hardened();
  const auto bp = nn_blueprint(cfg, agent);

  const sim::LeftTurnAdapter adapter(cfg, bp);
  const auto episode_results = sim::run_episodes(adapter, 12, 903,
                                                 /*threads=*/2);
  ASSERT_EQ(episode_results.size(), 12u);
  std::size_t expect_accepted = 0;
  std::size_t expect_rejected = 0;
  for (const auto& r : episode_results) {
    expect_accepted += r.messages_accepted;
    expect_rejected += r.messages_rejected;
  }
  // The corruption plan against the hardened gate must actually reject —
  // otherwise this test pins nothing.
  ASSERT_GT(expect_rejected, 0u);
  ASSERT_GT(expect_accepted, 0u);

  for (const std::size_t pool : {3u, 64u, 8192u}) {
    sim::FleetConfig fc;
    fc.pool_capacity = pool;
    fc.threads = 4;
    const auto records =
        sim::run_left_turn_fleet_records(cfg, bp, 12, 903, fc);
    ASSERT_EQ(records.size(), episode_results.size());
    std::size_t accepted = 0;
    std::size_t rejected = 0;
    for (std::size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(records[i].messages_accepted,
                episode_results[i].messages_accepted)
          << "pool=" << pool << " episode " << i;
      EXPECT_EQ(records[i].messages_rejected,
                episode_results[i].messages_rejected)
          << "pool=" << pool << " episode " << i;
      accepted += records[i].messages_accepted;
      rejected += records[i].messages_rejected;
    }
    EXPECT_EQ(accepted, expect_accepted) << "pool=" << pool;
    EXPECT_EQ(rejected, expect_rejected) << "pool=" << pool;
  }
}

}  // namespace
