#include <gtest/gtest.h>

#include <cmath>

#include "cvsafe/nn/optimizer.hpp"
#include "cvsafe/planners/expert.hpp"
#include "cvsafe/planners/nn_planner.hpp"
#include "cvsafe/planners/training.hpp"

namespace cvsafe::planners {
namespace {

const vehicle::VehicleLimits kEgo{0.0, 15.0, -6.0, 3.0};
const vehicle::VehicleLimits kC1{2.0, 15.0, -3.0, 3.0};

std::shared_ptr<const scenario::LeftTurnScenario> make_scenario() {
  return std::make_shared<const scenario::LeftTurnScenario>(
      scenario::LeftTurnGeometry{}, kEgo, kC1, 0.05);
}

TEST(ExpertParams, StylesDiffer) {
  EXPECT_GT(ExpertParams::conservative().go_margin,
            ExpertParams::aggressive().go_margin);
  EXPECT_EQ(expert_params_for(PlannerStyle::kConservative).go_margin,
            ExpertParams::conservative().go_margin);
  EXPECT_STREQ(planner_style_name(PlannerStyle::kConservative),
               "conservative");
  EXPECT_STREQ(planner_style_name(PlannerStyle::kAggressive), "aggressive");
}

TEST(Expert, GoesWhenWindowFarAway) {
  const ExpertPolicy expert(make_scenario(), ExpertParams::conservative());
  // Window opens in 30 s: plenty of time to clear.
  EXPECT_EQ(expert.act(0.0, -30.0, 8.0, util::Interval{30.0, 35.0}),
            kEgo.a_max);
}

TEST(Expert, YieldsWhenConflictImminent) {
  const ExpertPolicy expert(make_scenario(), ExpertParams::conservative());
  // Window opens in 2 s; clearing takes ~4 s from -30 m: must yield.
  const double a = expert.act(0.0, -30.0, 8.0, util::Interval{2.0, 6.0});
  EXPECT_LT(a, 0.0);
}

TEST(Expert, FullThrottleOncePastFrontLine) {
  const ExpertPolicy expert(make_scenario(), ExpertParams::conservative());
  EXPECT_EQ(expert.act(0.0, 6.0, 8.0, util::Interval{0.0, 5.0}), kEgo.a_max);
}

TEST(Expert, ResumesAfterWindowPasses) {
  const ExpertPolicy expert(make_scenario(), ExpertParams::conservative());
  EXPECT_EQ(expert.act(10.0, -1.0, 0.0, util::Interval{2.0, 6.0}),
            kEgo.a_max);
  EXPECT_EQ(expert.act(0.0, -1.0, 0.0, util::Interval::empty_interval()),
            kEgo.a_max);
}

TEST(Expert, WaitsWhenStoppedAtLine) {
  const ExpertPolicy expert(make_scenario(), ExpertParams::conservative());
  const double a = expert.act(1.0, 4.4, 0.0, util::Interval{1.5, 5.0});
  EXPECT_EQ(a, 0.0);
}

TEST(Expert, AggressiveGoesWhereConservativeYields) {
  const auto scn = make_scenario();
  const ExpertPolicy cons(scn, ExpertParams::conservative());
  const ExpertPolicy aggr(scn, ExpertParams::aggressive());
  // A marginal situation: clearing time roughly equals the window start.
  int diverge = 0;
  for (double w_lo = 2.0; w_lo <= 7.0; w_lo += 0.25) {
    const util::Interval tau1{w_lo, w_lo + 4.0};
    const double ac = cons.act(0.0, -30.0, 8.0, tau1);
    const double aa = aggr.act(0.0, -30.0, 8.0, tau1);
    if (aa > ac) ++diverge;
    EXPECT_GE(aa, ac);  // aggressive never brakes harder than conservative
  }
  EXPECT_GT(diverge, 3);
}

TEST(InputEncoding, NormalizesAndClamps) {
  const InputEncoding enc;
  const auto x = enc.encode(10.0, -15.0, 7.5, util::Interval{12.0, 14.0});
  ASSERT_EQ(x.size(), InputEncoding::dim());
  EXPECT_NEAR(x[0], -0.5, 1e-12);
  EXPECT_NEAR(x[1], 0.5, 1e-12);
  EXPECT_NEAR(x[2], 0.2, 1e-12);  // (12-10)/10
  EXPECT_NEAR(x[3], 0.4, 1e-12);
  // Far future clamps at w_max.
  const auto far = enc.encode(0.0, 0.0, 0.0, util::Interval{100.0, 200.0});
  EXPECT_NEAR(far[2], 3.0, 1e-12);
  EXPECT_NEAR(far[3], 3.0, 1e-12);
}

TEST(InputEncoding, EmptyAndPassedWindowsUseSentinel) {
  const InputEncoding enc;
  const auto empty = enc.encode(0.0, 0.0, 0.0,
                                util::Interval::empty_interval());
  EXPECT_NEAR(empty[2], -0.2, 1e-12);
  EXPECT_NEAR(empty[3], -0.2, 1e-12);
  const auto passed = enc.encode(10.0, 0.0, 0.0, util::Interval{2.0, 6.0});
  EXPECT_EQ(passed[2], empty[2]);
  EXPECT_EQ(passed[3], empty[3]);
}

TEST(Dataset, GenerationShapesAndLabelRange) {
  const auto scn = make_scenario();
  const ExpertPolicy expert(scn, ExpertParams::conservative());
  util::Rng rng(1);
  const auto data =
      generate_imitation_dataset(*scn, expert, InputEncoding{}, 500, rng);
  EXPECT_EQ(data.size(), 500u);
  EXPECT_EQ(data.inputs.cols(), InputEncoding::dim());
  EXPECT_EQ(data.targets.cols(), 1u);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_GE(data.targets(i, 0), kEgo.a_min);
    EXPECT_LE(data.targets(i, 0), kEgo.a_max);
  }
}

TEST(Training, ImitationLearnsTheExpert) {
  const auto scn = make_scenario();
  TrainingOptions options;
  options.num_samples = 6000;
  options.epochs = 30;
  const nn::Mlp net =
      train_planner_network(*scn, PlannerStyle::kConservative, options);

  // Agreement on fresh states: the sign/magnitude of the command must
  // track the expert closely.
  const ExpertPolicy expert(scn, ExpertParams::conservative());
  const InputEncoding enc;
  util::Rng rng(99);
  int agree = 0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    const double p0 = rng.uniform(-35, 15);
    const double v0 = rng.uniform(0, 15);
    const double lo = rng.uniform(0, 10);
    const util::Interval tau1{lo, lo + rng.uniform(0.5, 6.0)};
    const double label = expert.act(0.0, p0, v0, tau1);
    const double pred = net.predict(enc.encode(0.0, p0, v0, tau1))[0];
    // "Agreement": same accelerate-vs-brake decision or close value.
    if ((label > 1.0) == (pred > 1.0) || std::abs(label - pred) < 1.5) {
      ++agree;
    }
  }
  EXPECT_GT(agree, n * 85 / 100);
}

TEST(NnPlanner, WrapsNetworkAsPlanner) {
  const auto scn = make_scenario();
  TrainingOptions options;
  options.num_samples = 2000;
  options.epochs = 10;
  auto net = std::make_shared<const nn::Mlp>(
      train_planner_network(*scn, PlannerStyle::kConservative, options));
  NnPlanner planner(net, InputEncoding{}, "test_nn");
  EXPECT_EQ(planner.name(), "test_nn");

  scenario::LeftTurnWorld world;
  world.t = 0.0;
  world.ego = {-30.0, 8.0};
  world.tau1_nn = util::Interval{30.0, 34.0};
  const double a = planner.plan(world);
  EXPECT_TRUE(std::isfinite(a));
}

TEST(Training, CachedNetworkIsReusedInMemory) {
  const auto scn = make_scenario();
  TrainingOptions options;
  options.num_samples = 1500;
  options.epochs = 5;
  options.seed = 424242;  // distinct cache key for this test
  const auto a = cached_planner_network(*scn, PlannerStyle::kConservative,
                                        options);
  const auto b = cached_planner_network(*scn, PlannerStyle::kConservative,
                                        options);
  EXPECT_EQ(a.get(), b.get());  // same shared instance
}

TEST(Training, OnPolicyDatasetVisitsScenarioStates) {
  const auto scn = make_scenario();
  TrainingOptions options;
  options.num_samples = 2000;
  options.epochs = 8;
  util::Rng rng(7);
  const nn::Mlp net =
      train_planner_network(*scn, PlannerStyle::kConservative, options);
  const ExpertPolicy expert(scn, ExpertParams::conservative());
  const nn::Dataset visited = generate_onpolicy_dataset(
      *scn, net, expert, InputEncoding{}, /*episodes=*/5, rng);
  EXPECT_GT(visited.size(), 50u);
  EXPECT_EQ(visited.inputs.cols(), InputEncoding::dim());
  // Labels stay within the actuation range.
  for (std::size_t i = 0; i < visited.size(); ++i) {
    EXPECT_GE(visited.targets(i, 0), kEgo.a_min);
    EXPECT_LE(visited.targets(i, 0), kEgo.a_max);
  }
}

TEST(Training, OnPolicyRoundsDoNotDegradeImitation) {
  const auto scn = make_scenario();
  TrainingOptions base;
  base.num_samples = 4000;
  base.epochs = 20;
  base.seed = 777;
  TrainingOptions dagger = base;
  dagger.onpolicy_rounds = 1;
  dagger.onpolicy_episodes_per_round = 10;
  dagger.onpolicy_epochs = 5;

  const nn::Mlp plain =
      train_planner_network(*scn, PlannerStyle::kConservative, base);
  const nn::Mlp refined =
      train_planner_network(*scn, PlannerStyle::kConservative, dagger);

  const ExpertPolicy expert(scn, ExpertParams::conservative());
  const InputEncoding enc;
  util::Rng rng(55);
  const nn::Dataset probe =
      generate_imitation_dataset(*scn, expert, enc, 1500, rng);
  const double err_plain = nn::evaluate(plain, probe);
  const double err_refined = nn::evaluate(refined, probe);
  // Fine-tuning on aggregated data must not blow up the fit.
  EXPECT_LT(err_refined, err_plain * 2.5 + 0.05);
}

TEST(Training, StylesProduceDifferentNetworks) {
  const auto scn = make_scenario();
  TrainingOptions options;
  options.num_samples = 3000;
  options.epochs = 15;
  options.seed = 555;
  const auto cons =
      cached_planner_network(*scn, PlannerStyle::kConservative, options);
  const auto aggr =
      cached_planner_network(*scn, PlannerStyle::kAggressive, options);
  // A marginal state where the styles must disagree.
  const InputEncoding enc;
  const auto x = enc.encode(0.0, -30.0, 8.0, util::Interval{4.5, 8.0});
  EXPECT_GT(aggr->predict(x)[0], cons->predict(x)[0]);
}

}  // namespace
}  // namespace cvsafe::planners
