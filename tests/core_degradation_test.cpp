#include "cvsafe/core/degradation.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "cvsafe/util/contracts.hpp"

namespace cvsafe::core {
namespace {

using util::ContractMode;
using util::ContractViolation;
using util::ScopedContractMode;

constexpr auto kFull = DegradationLevel::kFull;
constexpr auto kReach = DegradationLevel::kReachOnly;
constexpr auto kSensor = DegradationLevel::kSensorOnly;
constexpr auto kEmergency = DegradationLevel::kEmergencyBiased;

DegradationSignals sig(double age, bool consistent = true) {
  DegradationSignals s;
  s.message_age = age;
  s.have_message = true;
  s.filter_consistent = consistent;
  return s;
}

TEST(LadderConfig, ValidateRejectsBadThresholds) {
  ScopedContractMode mode(ContractMode::kThrow);
  LadderConfig c;
  c.stale_budget = 0.0;
  EXPECT_THROW(c.validate(), ContractViolation);
  c = LadderConfig{};
  c.lost_budget = c.stale_budget / 2.0;  // lost < stale
  EXPECT_THROW(c.validate(), ContractViolation);
  c = LadderConfig{};
  c.recover_margin = 1.5;
  EXPECT_THROW(c.validate(), ContractViolation);
  c = LadderConfig{};
  c.recover_margin = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(c.validate(), ContractViolation);
  c = LadderConfig{};
  c.recover_steps = 0;
  EXPECT_THROW(DegradationLadder{c}, ContractViolation);
}

TEST(Ladder, LevelNames) {
  EXPECT_STREQ(to_string(kFull), "full");
  EXPECT_STREQ(to_string(kReach), "reach-only");
  EXPECT_STREQ(to_string(kSensor), "sensor-only");
  EXPECT_STREQ(to_string(kEmergency), "emergency-biased");
}

TEST(Ladder, NoMessageEverMeansSensorOnly) {
  DegradationLadder ladder{LadderConfig{}};
  DegradationSignals s;  // have_message = false, age = inf
  EXPECT_EQ(ladder.update(0, s), kSensor);
}

// The ISSUE's acceptance trace: a scripted signal schedule must produce
// this exact level sequence — degradations immediate, recovery one rung
// per recover_steps (5) consecutive steps clearing the tightened
// (recover_margin 0.5) budgets. Defaults: stale 0.3 s, lost 1.0 s.
TEST(Ladder, ScriptedScheduleProducesExactLevelTrace) {
  DegradationLadder ladder{LadderConfig{}};

  struct Step {
    double age;
    bool consistent;
    DegradationLevel expect;
  };
  const std::vector<Step> script = {
      // Fresh messages: FULL.
      {0.1, true, kFull},        // 0
      {0.1, true, kFull},        // 1
      {0.1, true, kFull},        // 2
      // Age crosses the stale budget: degrade immediately.
      {0.4, true, kReach},       // 3
      // Age crosses the lost budget: degrade again.
      {1.2, true, kSensor},      // 4
      // Filter inconsistency: worst rung, immediately.
      {1.2, false, kEmergency},  // 5
      // Signals fully clear (age 0.1 < 0.15 tightened stale budget), but
      // recovery waits for 5 consecutive clear steps...
      {0.1, true, kEmergency},   // 6
      {0.1, true, kEmergency},   // 7
      {0.1, true, kEmergency},   // 8
      {0.1, true, kEmergency},   // 9
      // ...then climbs exactly one rung.
      {0.1, true, kSensor},      // 10
      {0.1, true, kSensor},      // 11
      {0.1, true, kSensor},      // 12
      {0.1, true, kSensor},      // 13
      {0.1, true, kSensor},      // 14
      {0.1, true, kReach},       // 15
      {0.1, true, kReach},       // 16
      {0.1, true, kReach},       // 17
      {0.1, true, kReach},       // 18
      {0.1, true, kReach},       // 19
      {0.1, true, kFull},        // 20
      {0.1, true, kFull},        // 21
  };
  for (std::size_t i = 0; i < script.size(); ++i) {
    EXPECT_EQ(ladder.update(i, sig(script[i].age, script[i].consistent)),
              script[i].expect)
        << "step " << i;
  }

  // The transition log pins every level change.
  const auto& tr = ladder.transitions();
  ASSERT_EQ(tr.size(), 6u);
  const LadderTransition expected[] = {
      {3, kFull, kReach},      {4, kReach, kSensor},
      {5, kSensor, kEmergency}, {10, kEmergency, kSensor},
      {15, kSensor, kReach},   {20, kReach, kFull},
  };
  for (std::size_t i = 0; i < tr.size(); ++i) {
    EXPECT_EQ(tr[i].step, expected[i].step) << "transition " << i;
    EXPECT_EQ(tr[i].from, expected[i].from) << "transition " << i;
    EXPECT_EQ(tr[i].to, expected[i].to) << "transition " << i;
  }

  const auto& stats = ladder.stats();
  EXPECT_EQ(stats.transitions, 6u);
  EXPECT_EQ(stats.steps_at[0], 5u);  // full
  EXPECT_EQ(stats.steps_at[1], 6u);  // reach-only
  EXPECT_EQ(stats.steps_at[2], 6u);  // sensor-only
  EXPECT_EQ(stats.steps_at[3], 5u);  // emergency-biased
}

// Hysteresis: an age oscillating between "fresh enough to degrade-target
// FULL" and "stale" — but never under the tightened recovery budget —
// must park the ladder at REACH-ONLY instead of chattering.
TEST(Ladder, OscillatingAgeDoesNotChatter) {
  DegradationLadder ladder{LadderConfig{}};
  ladder.update(0, sig(0.4));  // degrade to REACH-ONLY
  ASSERT_EQ(ladder.level(), kReach);
  for (std::size_t step = 1; step <= 40; ++step) {
    // 0.2 clears the degrade threshold (0.3) but not the tightened
    // recovery threshold (0.15).
    const double age = (step % 2 == 0) ? 0.4 : 0.2;
    EXPECT_EQ(ladder.update(step, sig(age)), kReach) << "step " << step;
  }
  EXPECT_EQ(ladder.stats().transitions, 1u);
}

// A partial clear streak is cancelled by a single dirty step.
TEST(Ladder, RecoveryStreakResetsOnDirtyStep) {
  DegradationLadder ladder{LadderConfig{}};
  ladder.update(0, sig(0.4));
  ASSERT_EQ(ladder.level(), kReach);
  for (std::size_t step = 1; step <= 4; ++step) {
    ladder.update(step, sig(0.1));  // 4 clear steps: one short of recovery
  }
  ladder.update(5, sig(0.2));  // dirty (above tightened budget): reset
  for (std::size_t step = 6; step <= 9; ++step) {
    EXPECT_EQ(ladder.update(step, sig(0.1)), kReach) << "step " << step;
  }
  EXPECT_EQ(ladder.update(10, sig(0.1)), kFull);  // 5th consecutive clear
}

TEST(Ladder, DegradeCanSkipRungsDownward) {
  DegradationLadder ladder{LadderConfig{}};
  EXPECT_EQ(ladder.update(0, sig(0.1, /*consistent=*/false)), kEmergency);
  EXPECT_EQ(ladder.stats().transitions, 1u);  // FULL -> EMERGENCY in one step
}

TEST(Ladder, RecoveryNeverSkipsRungs) {
  LadderConfig cfg;
  cfg.recover_steps = 1;
  DegradationLadder ladder{cfg};
  ladder.update(0, sig(0.1, false));
  ASSERT_EQ(ladder.level(), kEmergency);
  // Even with instant recovery, each step climbs at most one rung.
  EXPECT_EQ(ladder.update(1, sig(0.1)), kSensor);
  EXPECT_EQ(ladder.update(2, sig(0.1)), kReach);
  EXPECT_EQ(ladder.update(3, sig(0.1)), kFull);
}

}  // namespace
}  // namespace cvsafe::core
