#include "cvsafe/nn/interval_mlp.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "cvsafe/nn/fast_math.hpp"
#include "cvsafe/nn/mlp.hpp"
#include "cvsafe/util/rng.hpp"
#include "cvsafe/util/rounded_interval.hpp"

namespace cvsafe::nn {
namespace {

using util::Interval;

Mlp make_net(const std::vector<std::size_t>& sizes, Activation hidden,
             std::uint64_t seed) {
  MlpSpec spec{sizes, hidden, Activation::kIdentity};
  util::Rng rng(seed);
  return Mlp(spec, rng);
}

/// Core soundness property: the interval pass over a box encloses the
/// binary's own concrete predict_scalar at every sampled point of the box.
/// Run per hidden-activation type; 10k samples each.
void check_enclosure(Activation hidden, std::uint64_t seed) {
  Mlp net = make_net({4, 16, 16, 1}, hidden, seed);
  util::Rng rng(seed + 1);
  Workspace ws;
  IntervalWorkspace iws;

  for (int box_trial = 0; box_trial < 100; ++box_trial) {
    std::array<Interval, 4> box;
    std::array<double, 4> lo{}, wid{};
    for (std::size_t i = 0; i < 4; ++i) {
      lo[i] = rng.uniform(-2.0, 2.0);
      wid[i] = rng.uniform(0.0, 1.0);
      box[i] = Interval{lo[i], lo[i] + wid[i]};
    }
    const Interval bound = interval_predict_scalar(net, box, iws);
    ASSERT_FALSE(bound.empty());

    std::array<double, 4> x{};
    for (int sample = 0; sample < 100; ++sample) {
      for (std::size_t i = 0; i < 4; ++i) {
        x[i] = rng.uniform(lo[i], lo[i] + wid[i]);
      }
      const double y = net.predict_scalar(x, ws);
      EXPECT_TRUE(bound.contains(y))
          << "concrete " << y << " escapes [" << bound.lo << ", "
          << bound.hi << "]";
    }
  }
}

TEST(IntervalMlp, EnclosesConcreteEvaluationsTanh) {
  check_enclosure(Activation::kTanh, 20230417);
}

TEST(IntervalMlp, EnclosesConcreteEvaluationsRelu) {
  check_enclosure(Activation::kRelu, 20230418);
}

TEST(IntervalMlp, EnclosesConcreteEvaluationsIdentity) {
  check_enclosure(Activation::kIdentity, 20230419);
}

/// Degenerate (point) boxes: the enclosure must still contain the
/// concrete value and be tanh-margin tight, not collapse to a lie.
TEST(IntervalMlp, PointBoxEnclosesPointEvaluation) {
  Mlp net = make_net({4, 24, 24, 1}, Activation::kTanh, 7);
  util::Rng rng(8);
  Workspace ws;
  IntervalWorkspace iws;
  for (int trial = 0; trial < 1000; ++trial) {
    std::array<double, 4> x{};
    std::array<Interval, 4> box;
    for (std::size_t i = 0; i < 4; ++i) {
      x[i] = rng.uniform(-2.0, 2.0);
      box[i] = Interval::point(x[i]);
    }
    const Interval bound = interval_predict_scalar(net, box, iws);
    const double y = net.predict_scalar(x, ws);
    EXPECT_TRUE(bound.contains(y));
    EXPECT_LT(bound.width(), 1e-9);  // point boxes stay ulp-scale tight
  }
}

/// The tanh enclosure must cover the exact tanh AND the binary's
/// fast_tanh at ulp granularity: dense sweep over endpoints and interior
/// points, including the saturation region and subnormal-adjacent inputs.
TEST(FastTanhEnclosure, CoversExactAndFastTanhDense) {
  util::Rng rng(20230417);
  for (int trial = 0; trial < 10000; ++trial) {
    const double a = rng.uniform(-20.0, 20.0);
    const double b = a + rng.uniform(0.0, 2.0);
    const Interval enc = fast_tanh_enclosure(Interval{a, b});
    ASSERT_FALSE(enc.empty());
    EXPECT_GE(enc.lo, -1.0);
    EXPECT_LE(enc.hi, 1.0);
    for (const double x :
         {a, b, a + 0.25 * (b - a), a + 0.5 * (b - a), a + 0.75 * (b - a)}) {
      EXPECT_TRUE(enc.contains(std::tanh(x)))
          << "exact tanh(" << x << ") escapes";
      EXPECT_TRUE(enc.contains(fast_tanh(x)))
          << "fast_tanh(" << x << ") escapes";
    }
  }
}

/// Ulp-level margin audit at the endpoints: the enclosure's padding
/// around the endpoint values must be at least the documented margin and
/// at most ~2 margins plus the directed-rounding step.
TEST(FastTanhEnclosure, MarginIsTightAtPoints) {
  namespace rd = util::rounded;
  util::Rng rng(99);
  for (int trial = 0; trial < 10000; ++trial) {
    const double x = rng.uniform(-3.0, 3.0);
    const Interval enc = fast_tanh_enclosure(Interval::point(x));
    const double t = fast_tanh(x);
    // Sound on both sides of the computed value...
    EXPECT_LE(enc.lo, t);
    EXPECT_GE(enc.hi, t);
    // ...wide enough to absorb the validated fast_tanh error...
    if (enc.lo > -1.0) {
      EXPECT_LE(enc.lo, t - kTanhEnclosureMargin);
    }
    if (enc.hi < 1.0) {
      EXPECT_GE(enc.hi, t + kTanhEnclosureMargin);
    }
    // ...and no wider than the margin plus one directed step per side.
    EXPECT_GE(enc.lo, rd::prev(t - kTanhEnclosureMargin) - 1e-300);
    EXPECT_LE(enc.hi, rd::next(t + kTanhEnclosureMargin) + 1e-300);
    // The exact value is covered with room to spare (|error| <= margin/2).
    EXPECT_TRUE(enc.contains(std::tanh(x)));
  }
}

TEST(FastTanhEnclosure, SaturatesInsideUnitInterval) {
  const Interval deep_pos = fast_tanh_enclosure(Interval{30.0, 40.0});
  EXPECT_LE(deep_pos.hi, 1.0);
  EXPECT_GT(deep_pos.lo, 0.999999);
  const Interval deep_neg = fast_tanh_enclosure(Interval{-40.0, -30.0});
  EXPECT_GE(deep_neg.lo, -1.0);
  EXPECT_LT(deep_neg.hi, -0.999999);
}

TEST(ActivationEnclosure, IdentityAndReluAreExact) {
  const Interval z{-2.0, 3.0};
  EXPECT_EQ(activation_enclosure(Activation::kIdentity, z), z);
  const Interval r = activation_enclosure(Activation::kRelu, z);
  EXPECT_EQ(r.lo, 0.0);
  EXPECT_EQ(r.hi, 3.0);
  const Interval all_neg = activation_enclosure(Activation::kRelu,
                                                Interval{-5.0, -1.0});
  EXPECT_EQ(all_neg.lo, 0.0);
  EXPECT_EQ(all_neg.hi, 0.0);
}

TEST(ActivationEnclosure, SigmoidIsRejectedByContract) {
  util::ScopedContractMode mode(util::ContractMode::kThrow);
  EXPECT_THROW(activation_enclosure(Activation::kSigmoid, Interval{0.0, 1.0}),
               util::ContractViolation);
}

/// Interval affine vs the concrete layer kernel on random layers: the
/// per-output enclosures must contain the concrete outputs (shared
/// k-ascending accumulation order makes this exact, not probabilistic).
TEST(IntervalAffine, EnclosesConcreteLayerOutputs) {
  Mlp net = make_net({6, 12, 1}, Activation::kTanh, 42);
  const DenseLayer& layer = net.layer(0);
  util::Rng rng(43);
  for (int trial = 0; trial < 100; ++trial) {
    std::array<Interval, 6> in;
    std::array<double, 6> lo{}, wid{};
    for (std::size_t i = 0; i < 6; ++i) {
      lo[i] = rng.uniform(-3.0, 3.0);
      wid[i] = rng.uniform(0.0, 2.0);
      in[i] = Interval{lo[i], lo[i] + wid[i]};
    }
    std::vector<Interval> out(layer.out_dim());
    interval_affine(layer, in, out);

    for (int sample = 0; sample < 100; ++sample) {
      std::vector<double> x(6);
      for (std::size_t i = 0; i < 6; ++i) {
        x[i] = rng.uniform(lo[i], lo[i] + wid[i]);
      }
      // Concrete reference: same accumulation order as the kernels.
      for (std::size_t j = 0; j < layer.out_dim(); ++j) {
        double acc = 0.0;
        for (std::size_t k = 0; k < layer.in_dim(); ++k) {
          acc += x[k] * layer.weights()(j, k);
        }
        const double z = acc + layer.bias()(0, j);
        const double y = fast_tanh(z);
        EXPECT_TRUE(out[j].contains(y));
      }
    }
  }
}

TEST(IntervalWorkspaceShape, ReusesBuffersAcrossCalls) {
  Mlp net = make_net({4, 24, 24, 1}, Activation::kTanh, 5);
  IntervalWorkspace iws;
  iws.reserve(24);
  std::array<Interval, 4> box;
  for (auto& iv : box) iv = Interval{-1.0, 1.0};
  const Interval first = interval_predict_scalar(net, box, iws);
  const Interval second = interval_predict_scalar(net, box, iws);
  EXPECT_EQ(first, second);  // deterministic and state-free across reuse
}

}  // namespace
}  // namespace cvsafe::nn
