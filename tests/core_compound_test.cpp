// The generic framework: CompoundPlanner + SafetyModelBase on a minimal
// synthetic world type, independent of any vehicle scenario — verifying
// the monitor's selection logic (Section III-C), statistics, and the
// aggressive-shrink plumbing.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "cvsafe/core/compound_planner.hpp"
#include "cvsafe/core/evaluation.hpp"
#include "cvsafe/core/guard.hpp"
#include "cvsafe/core/version.hpp"

namespace cvsafe::core {
namespace {

/// Minimal synthetic world: a scalar "danger" level.
struct ToyWorld {
  double danger = 0.0;
  bool shrunk = false;
};

class ToyPlanner final : public PlannerBase<ToyWorld> {
 public:
  double plan(const ToyWorld& w) override {
    ++calls;
    saw_shrunk = w.shrunk;
    return 1.0;  // always accelerate
  }
  std::string_view name() const override { return "toy"; }
  int calls = 0;
  bool saw_shrunk = false;
};

class ToySafetyModel final : public SafetyModelBase<ToyWorld> {
 public:
  bool in_unsafe_set(const ToyWorld& w) const override {
    return w.danger > 1.0;
  }
  bool in_boundary_safe_set(const ToyWorld& w) const override {
    return w.danger > 0.5 && w.danger <= 1.0;
  }
  double emergency_accel(const ToyWorld&) const override { return -2.0; }
  ToyWorld shrink_for_planner(const ToyWorld& w) const override {
    ToyWorld s = w;
    s.shrunk = true;
    return s;
  }
};

TEST(CompoundPlanner, SelectsNnWhenSafe) {
  auto nn = std::make_shared<ToyPlanner>();
  CompoundPlanner<ToyWorld> compound(nn, std::make_shared<ToySafetyModel>());
  EXPECT_EQ(compound.plan(ToyWorld{0.1, false}), 1.0);
  EXPECT_FALSE(compound.last_was_emergency());
  EXPECT_EQ(nn->calls, 1);
}

TEST(CompoundPlanner, SelectsEmergencyInBoundarySet) {
  auto nn = std::make_shared<ToyPlanner>();
  CompoundPlanner<ToyWorld> compound(nn, std::make_shared<ToySafetyModel>());
  EXPECT_EQ(compound.plan(ToyWorld{0.7, false}), -2.0);
  EXPECT_TRUE(compound.last_was_emergency());
  EXPECT_EQ(nn->calls, 0);  // NN never consulted during emergency
}

TEST(CompoundPlanner, ShrinkAppliedOnlyWhenEnabled) {
  auto nn = std::make_shared<ToyPlanner>();
  CompoundPlanner<ToyWorld> basic(nn, std::make_shared<ToySafetyModel>(),
                                  CompoundOptions{false});
  basic.plan(ToyWorld{0.0, false});
  EXPECT_FALSE(nn->saw_shrunk);

  CompoundPlanner<ToyWorld> ultimate(nn, std::make_shared<ToySafetyModel>(),
                                     CompoundOptions{true});
  ultimate.plan(ToyWorld{0.0, false});
  EXPECT_TRUE(nn->saw_shrunk);
}

TEST(CompoundPlanner, StatsCountEmergencyFrequency) {
  auto nn = std::make_shared<ToyPlanner>();
  CompoundPlanner<ToyWorld> compound(nn, std::make_shared<ToySafetyModel>());
  for (int i = 0; i < 8; ++i) compound.plan(ToyWorld{0.1, false});
  for (int i = 0; i < 2; ++i) compound.plan(ToyWorld{0.8, false});
  EXPECT_EQ(compound.stats().total_steps, 10u);
  EXPECT_EQ(compound.stats().emergency_steps, 2u);
  EXPECT_NEAR(compound.stats().emergency_frequency(), 0.2, 1e-12);
  compound.reset_stats();
  EXPECT_EQ(compound.stats().total_steps, 0u);
}

TEST(CompoundPlanner, NameReflectsConfiguration) {
  auto nn = std::make_shared<ToyPlanner>();
  CompoundPlanner<ToyWorld> basic(nn, std::make_shared<ToySafetyModel>());
  EXPECT_EQ(basic.name(), "compound(toy)");
  CompoundPlanner<ToyWorld> ult(nn, std::make_shared<ToySafetyModel>(),
                                CompoundOptions{true});
  EXPECT_EQ(ult.name(), "compound(toy, aggressive)");
}

TEST(MonitorStats, EmptyFrequencyIsZero) {
  EXPECT_EQ(MonitorStats{}.emergency_frequency(), 0.0);
}

TEST(CompoundPlanner, RecordsSwitchEvents) {
  auto nn = std::make_shared<ToyPlanner>();
  CompoundPlanner<ToyWorld> compound(nn, std::make_shared<ToySafetyModel>());
  compound.plan(ToyWorld{0.1, false});  // nn
  compound.plan(ToyWorld{0.8, false});  // -> emergency (step 1)
  compound.plan(ToyWorld{0.9, false});  // still emergency (no new event)
  compound.plan(ToyWorld{0.1, false});  // -> nn (step 3)
  compound.plan(ToyWorld{0.7, false});  // -> emergency again (step 4)

  const auto& events = compound.switch_events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].step, 1u);
  EXPECT_TRUE(events[0].to_emergency);
  EXPECT_EQ(events[0].reason, "boundary");  // default classification
  EXPECT_EQ(events[1].step, 3u);
  EXPECT_FALSE(events[1].to_emergency);
  EXPECT_EQ(events[2].step, 4u);
  EXPECT_TRUE(events[2].to_emergency);

  compound.reset_stats();
  EXPECT_TRUE(compound.switch_events().empty());
}

TEST(CompoundPlanner, SwitchEventsAreBounded) {
  auto nn = std::make_shared<ToyPlanner>();
  CompoundPlanner<ToyWorld> compound(nn, std::make_shared<ToySafetyModel>());
  for (std::size_t i = 0;
       i < CompoundPlanner<ToyWorld>::kMaxSwitchEvents * 2; ++i) {
    compound.plan(ToyWorld{i % 2 == 0 ? 0.8 : 0.1, false});  // flip-flop
  }
  EXPECT_EQ(compound.switch_events().size(),
            CompoundPlanner<ToyWorld>::kMaxSwitchEvents);
}

/// Planner that can be told to misbehave.
class FaultyPlanner final : public PlannerBase<ToyWorld> {
 public:
  enum class Mode { kOk, kNan, kInf, kThrow };
  Mode mode = Mode::kOk;

  double plan(const ToyWorld&) override {
    switch (mode) {
      case Mode::kOk: return 1.5;
      case Mode::kNan: return std::nan("");
      case Mode::kInf: return std::numeric_limits<double>::infinity();
      case Mode::kThrow: throw std::runtime_error("inference failed");
    }
    return 0.0;
  }
  std::string_view name() const override { return "faulty"; }
};

TEST(GuardedPlanner, PassesThroughHealthyOutput) {
  auto inner = std::make_shared<FaultyPlanner>();
  GuardedPlanner<ToyWorld> guard(inner, std::make_shared<ToySafetyModel>());
  EXPECT_EQ(guard.plan(ToyWorld{}), 1.5);
  EXPECT_EQ(guard.incidents(), 0u);
  EXPECT_EQ(guard.name(), "guarded(faulty)");
}

TEST(GuardedPlanner, AbsorbsNanInfAndExceptions) {
  auto inner = std::make_shared<FaultyPlanner>();
  GuardedPlanner<ToyWorld> guard(inner, std::make_shared<ToySafetyModel>());
  inner->mode = FaultyPlanner::Mode::kNan;
  EXPECT_EQ(guard.plan(ToyWorld{}), -2.0);  // emergency fallback
  inner->mode = FaultyPlanner::Mode::kInf;
  EXPECT_EQ(guard.plan(ToyWorld{}), -2.0);
  inner->mode = FaultyPlanner::Mode::kThrow;
  EXPECT_EQ(guard.plan(ToyWorld{}), -2.0);
  EXPECT_EQ(guard.incidents(), 3u);
}

TEST(GuardedPlanner, ComposesInsideCompound) {
  auto inner = std::make_shared<FaultyPlanner>();
  inner->mode = FaultyPlanner::Mode::kNan;
  auto model = std::make_shared<ToySafetyModel>();
  auto guarded = std::make_shared<GuardedPlanner<ToyWorld>>(inner, model);
  CompoundPlanner<ToyWorld> compound(guarded, model);
  // Away from the boundary the NN would be used; its NaN is absorbed.
  EXPECT_EQ(compound.plan(ToyWorld{0.1, false}), -2.0);
  EXPECT_FALSE(compound.last_was_emergency());  // monitor did not trigger
  EXPECT_EQ(guarded->incidents(), 1u);
}

TEST(Eta, MatchesSectionIIA) {
  EXPECT_EQ(eta({true, false, 0.0}), -1.0);
  EXPECT_EQ(eta({true, true, 5.0}), -1.0);  // violation dominates
  EXPECT_NEAR(eta({false, true, 8.0}), 0.125, 1e-12);
  EXPECT_EQ(eta({false, false, 0.0}), 0.0);  // timeout
}

TEST(Version, NonEmpty) {
  EXPECT_STRNE(version(), "");
}

}  // namespace
}  // namespace cvsafe::core
