// Seed-derivation properties backing the batch runners.
//
// Historically per-point seed bases were strided (base + (1 << 24) * k),
// so two sweep points whose episode counts exceeded the stride — or two
// experiment settings sharing the stride grid — silently reran identical
// episode streams. eval::run_setting now derives each point base through
// util::derive_seed; these tests pin the properties that fix relies on.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "cvsafe/sim/seeding.hpp"
#include "cvsafe/util/rng.hpp"

namespace {

using namespace cvsafe;

TEST(SeedDerivation, InjectiveInStreamForFixedBase) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t stream = 0; stream < 20000; ++stream) {
    seen.insert(util::derive_seed(12345, stream));
  }
  EXPECT_EQ(seen.size(), 20000u);  // splitmix64 finalizer is a bijection
}

TEST(SeedDerivation, DistinctBasesGiveDistinctStreams) {
  // Same stream index under nearby bases must not collide — the classic
  // failure of `base + stride * k` schemes.
  std::set<std::uint64_t> seen;
  for (std::uint64_t base = 1; base <= 64; ++base) {
    for (std::uint64_t stream = 0; stream < 64; ++stream) {
      seen.insert(util::derive_seed(base, stream));
    }
  }
  EXPECT_EQ(seen.size(), 64u * 64u);
}

TEST(SeedDerivation, EpisodeSeedPoliciesMatchTheirDefinitions) {
  EXPECT_EQ(sim::episode_seed(100, 7, sim::SeedPolicy::kPaired), 107u);
  EXPECT_EQ(sim::episode_seed(100, 7, sim::SeedPolicy::kDerived),
            util::derive_seed(100, 7));
  // Paired batches on the same base are seed-aligned episode by episode.
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(sim::episode_seed(55, i, sim::SeedPolicy::kPaired), 55u + i);
  }
}

TEST(SeedDerivation, RunSettingPointBasesAreRangeDisjoint) {
  // eval::run_setting derives per-(setting, grid-point) bases as
  // derive_seed(base, (setting << 32) | gi) and then runs per_point
  // paired episodes from each. The episode ranges [b, b + per_point)
  // must be pairwise disjoint or two sweep points replay each other's
  // workloads. Check the concrete values the experiments use.
  constexpr std::uint64_t kPerPoint = 100000;  // far above any real batch
  std::vector<std::uint64_t> bases;
  for (const std::uint64_t base_seed : {1u, 7u, 20260101u}) {
    for (std::uint64_t setting = 0; setting < 3; ++setting) {
      for (std::uint64_t gi = 0; gi < 20; ++gi) {
        bases.push_back(
            util::derive_seed(base_seed, (setting << 32) | gi));
      }
    }
  }
  for (std::size_t i = 0; i < bases.size(); ++i) {
    for (std::size_t j = i + 1; j < bases.size(); ++j) {
      const std::uint64_t lo = std::min(bases[i], bases[j]);
      const std::uint64_t hi = std::max(bases[i], bases[j]);
      EXPECT_GE(hi - lo, kPerPoint)
          << "episode ranges of point bases " << i << " and " << j
          << " overlap";
    }
  }
}

}  // namespace
