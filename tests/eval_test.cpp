// Evaluation harness: agent assembly, simulation determinism, batch
// aggregation, seed pairing, and the experiment presets. Uses expert
// (closed-form) planners to keep the tests independent of NN training.

#include <gtest/gtest.h>

#include "cvsafe/eval/batch.hpp"
#include "cvsafe/eval/experiments.hpp"
#include "cvsafe/eval/simulation.hpp"

namespace cvsafe::eval {
namespace {

SimConfig test_config() {
  SimConfig c = SimConfig::paper_defaults();
  c.horizon = 20.0;
  return c;
}

AgentBlueprint expert_blueprint(const SimConfig& config, AgentConfig ac,
                                planners::ExpertParams params =
                                    planners::ExpertParams::conservative()) {
  AgentBlueprint bp;
  bp.name = "expert";
  bp.scenario = config.make_scenario();
  bp.net = nullptr;
  bp.sensor = config.sensor;
  ac.use_expert_planner = true;
  ac.expert_params = params;
  bp.config = ac;
  return bp;
}

TEST(AgentConfig, Presets) {
  const auto pure = AgentConfig::pure_nn();
  EXPECT_FALSE(pure.use_compound);
  const auto basic = AgentConfig::basic_compound();
  EXPECT_TRUE(basic.use_compound);
  EXPECT_FALSE(basic.use_info_filter);
  EXPECT_FALSE(basic.use_aggressive);
  const auto ult = AgentConfig::ultimate_compound();
  EXPECT_TRUE(ult.use_info_filter);
  EXPECT_TRUE(ult.use_aggressive);
}

TEST(WorkloadParams, PaperGrid) {
  const auto grid = WorkloadParams::paper_p1_grid();
  ASSERT_EQ(grid.size(), 20u);
  EXPECT_EQ(grid.front(), 50.5);
  EXPECT_EQ(grid.back(), 60.0);
}

TEST(Simulation, DeterministicGivenSeed) {
  const SimConfig config = test_config();
  const auto bp = expert_blueprint(config, AgentConfig::basic_compound());
  const SimResult a = run_left_turn_simulation(config, bp, 42);
  const SimResult b = run_left_turn_simulation(config, bp, 42);
  EXPECT_EQ(a.collided, b.collided);
  EXPECT_EQ(a.reached, b.reached);
  EXPECT_EQ(a.reach_time, b.reach_time);
  EXPECT_EQ(a.emergency_steps, b.emergency_steps);
}

TEST(Simulation, SeedsVaryTheWorkload) {
  const SimConfig config = test_config();
  const auto bp = expert_blueprint(config, AgentConfig::basic_compound());
  int distinct = 0;
  double prev = -1.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto r = run_left_turn_simulation(config, bp, seed);
    if (r.reach_time != prev) ++distinct;
    prev = r.reach_time;
  }
  EXPECT_GT(distinct, 4);
}

TEST(Simulation, ExpertCompoundReachesTarget) {
  const SimConfig config = test_config();
  const auto bp = expert_blueprint(config, AgentConfig::basic_compound());
  int reached = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto r = run_left_turn_simulation(config, bp, seed);
    EXPECT_FALSE(r.collided) << "seed " << seed;
    reached += r.reached ? 1 : 0;
  }
  EXPECT_GE(reached, 18);
}

TEST(Simulation, TraceRecordsEveryStep) {
  const SimConfig config = test_config();
  const auto bp = expert_blueprint(config, AgentConfig::ultimate_compound());
  SimTrace trace;
  const auto r = run_left_turn_simulation(config, bp, 3, &trace);
  EXPECT_EQ(trace.ego.size(), r.steps);
  EXPECT_EQ(trace.accel_commands.size(), r.steps);
  EXPECT_EQ(trace.emergency_flags.size(), r.steps);
  // Ego starts at the configured position.
  EXPECT_EQ(trace.ego.front().state.p, config.geometry.ego_start);
  // Time axis is the control clock.
  EXPECT_NEAR(trace.ego[1].t - trace.ego[0].t, config.dt_c, 1e-12);
}

TEST(Simulation, EtaConsistentWithOutcome) {
  const SimConfig config = test_config();
  const auto bp = expert_blueprint(config, AgentConfig::basic_compound());
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto r = run_left_turn_simulation(config, bp, seed);
    if (r.collided) {
      EXPECT_EQ(r.eta, -1.0);
    } else if (r.reached) {
      EXPECT_NEAR(r.eta, 1.0 / r.reach_time, 1e-12);
    } else {
      EXPECT_EQ(r.eta, 0.0);
    }
  }
}

TEST(Batch, AggregatesConsistently) {
  const SimConfig config = test_config();
  const auto bp = expert_blueprint(config, AgentConfig::basic_compound());
  const BatchStats stats = run_batch(config, bp, 30, 1, 2);
  EXPECT_EQ(stats.n, 30u);
  EXPECT_EQ(stats.etas.size(), 30u);
  EXPECT_LE(stats.safe_count, stats.n);
  EXPECT_LE(stats.reached_count, stats.n);
  EXPECT_GT(stats.total_steps, 0u);
  // Mean eta must match the stored per-episode values.
  double sum = 0.0;
  for (double e : stats.etas) sum += e;
  EXPECT_NEAR(stats.mean_eta, sum / 30.0, 1e-12);
}

TEST(Batch, ParallelMatchesSerial) {
  const SimConfig config = test_config();
  const auto bp = expert_blueprint(config, AgentConfig::ultimate_compound());
  const BatchStats serial = run_batch(config, bp, 16, 7, 1);
  const BatchStats parallel = run_batch(config, bp, 16, 7, 8);
  EXPECT_EQ(serial.etas, parallel.etas);
  EXPECT_EQ(serial.emergency_steps, parallel.emergency_steps);
}

TEST(Batch, MergeCombinesCounts) {
  BatchStats a, b;
  a.n = 2;
  a.safe_count = 2;
  a.reached_count = 1;
  a.mean_eta = 0.1;
  a.mean_reach_time = 8.0;
  a.etas = {0.2, 0.0};
  a.total_steps = 100;
  b.n = 2;
  b.safe_count = 1;
  b.reached_count = 2;
  b.mean_eta = 0.3;
  b.mean_reach_time = 5.0;
  b.etas = {0.3, 0.3};
  b.total_steps = 50;
  b.emergency_steps = 5;
  a.merge(b);
  EXPECT_EQ(a.n, 4u);
  EXPECT_EQ(a.safe_count, 3u);
  EXPECT_EQ(a.reached_count, 3u);
  EXPECT_NEAR(a.mean_eta, 0.2, 1e-12);
  EXPECT_NEAR(a.mean_reach_time, (8.0 * 1 + 5.0 * 2) / 3.0, 1e-12);
  EXPECT_EQ(a.etas.size(), 4u);
  EXPECT_EQ(a.total_steps, 150u);
  EXPECT_NEAR(a.emergency_frequency(), 5.0 / 150.0, 1e-12);
}

TEST(WinningFraction, CountsStrictWins) {
  const std::vector<double> a{0.2, 0.1, 0.3, -1.0};
  const std::vector<double> b{0.1, 0.1, 0.4, -1.0};
  EXPECT_NEAR(winning_fraction(a, b), 0.25, 1e-12);
}

TEST(WinningFraction, ToleranceCountsNearTies) {
  const std::vector<double> a{0.2, 0.1, 0.3995, -1.0};
  const std::vector<double> b{0.1, 0.1, 0.4, -1.0};
  // With a one-control-step tolerance the exact tie and the 5e-4
  // difference both count as wins.
  EXPECT_NEAR(winning_fraction(a, b, 1e-3), 0.75, 1e-12);
}

TEST(Experiments, GridsMatchPaper) {
  const auto drops = drop_prob_grid();
  ASSERT_EQ(drops.size(), 20u);
  EXPECT_EQ(drops.front(), 0.0);
  EXPECT_NEAR(drops.back(), 0.95, 1e-12);
  const auto deltas = sensor_delta_grid();
  ASSERT_EQ(deltas.size(), 20u);
  EXPECT_EQ(deltas.front(), 1.0);
  EXPECT_NEAR(deltas.back(), 4.8, 1e-12);
}

TEST(Experiments, ApplySettingShapesConfig) {
  const SimConfig base = test_config();
  const auto nd = apply_setting(base, CommSetting::kNoDisturbance, 0.0);
  EXPECT_EQ(nd.comm.drop_prob, 0.0);
  const auto delayed = apply_setting(base, CommSetting::kDelayed, 0.4);
  EXPECT_EQ(delayed.comm.drop_prob, 0.4);
  EXPECT_EQ(delayed.comm.delay, kPaperMessageDelay);
  const auto lost = apply_setting(base, CommSetting::kLost, 3.0);
  EXPECT_TRUE(lost.comm.lost);
  EXPECT_EQ(lost.sensor.delta_p, 3.0);
}

TEST(Experiments, RunSettingAggregatesAcrossGrid) {
  const SimConfig config = test_config();
  const auto bp = expert_blueprint(config, AgentConfig::ultimate_compound());
  const BatchStats stats =
      run_setting(config, bp, CommSetting::kDelayed, 40, 1, 4);
  // 20 grid points x ceil(40/20) = 2 episodes each.
  EXPECT_EQ(stats.n, 40u);
  EXPECT_EQ(stats.etas.size(), 40u);
}

TEST(EnsembleAgent, SafeAndFunctional) {
  SimConfig config = test_config();
  config.comm = comm::CommConfig::delayed(0.4, 0.25);

  AgentBlueprint bp;
  bp.scenario = config.make_scenario();
  planners::TrainingOptions small;
  small.num_samples = 2500;
  small.epochs = 10;
  small.seed = 8800;
  bp.ensemble = planners::train_planner_ensemble(
      *bp.scenario, planners::PlannerStyle::kAggressive, 3, small);
  bp.sensor = config.sensor;
  bp.config = AgentConfig::ultimate_compound();
  bp.config.ensemble_sigma_penalty = 1.0;
  bp.name = "ensemble-ultimate";

  const BatchStats stats = run_batch(config, bp, 40, 1, 0);
  EXPECT_EQ(stats.safe_count, stats.n);
  EXPECT_GT(stats.reached_count, 30u);
}

TEST(Experiments, NamesAreStable) {
  EXPECT_STREQ(comm_setting_name(CommSetting::kNoDisturbance),
               "no disturbance");
  EXPECT_STREQ(planner_variant_name(PlannerVariant::kUltimate), "ultimate");
}

}  // namespace
}  // namespace cvsafe::eval
