#include "cvsafe/comm/channel.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "cvsafe/util/contracts.hpp"

namespace cvsafe::comm {
namespace {

Message make_msg(double t, double p = 0.0, double v = 0.0, double a = 0.0) {
  return Message{1, vehicle::VehicleSnapshot{t, {p, v}, a}};
}

TEST(CommConfig, Presets) {
  const auto nd = CommConfig::no_disturbance();
  EXPECT_EQ(nd.delay, 0.0);
  EXPECT_EQ(nd.drop_prob, 0.0);
  EXPECT_FALSE(nd.lost);
  EXPECT_EQ(nd.label(), "no disturbance");

  const auto d = CommConfig::delayed(0.3);
  EXPECT_EQ(d.delay, 0.25);
  EXPECT_EQ(d.drop_prob, 0.3);
  EXPECT_NE(d.label().find("delayed"), std::string::npos);

  const auto lost = CommConfig::messages_lost();
  EXPECT_TRUE(lost.lost);
  EXPECT_EQ(lost.label(), "messages lost");
}

TEST(Channel, ImmediateDeliveryWithoutDisturbance) {
  Channel ch(CommConfig::no_disturbance(0.1));
  util::Rng rng(1);
  ch.offer(make_msg(0.0), rng);
  const auto got = ch.collect(0.0);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].stamp(), 0.0);
}

TEST(Channel, RespectsTransmissionPeriod) {
  Channel ch(CommConfig::no_disturbance(0.1));
  util::Rng rng(1);
  // Control steps every 0.05 s; only every other step transmits.
  for (int step = 0; step < 10; ++step) {
    ch.offer(make_msg(step * 0.05), rng);
  }
  const auto got = ch.collect(1.0);
  EXPECT_EQ(got.size(), 5u);  // t = 0, 0.1, 0.2, 0.3, 0.4
  EXPECT_EQ(ch.sent_count(), 5u);
}

TEST(Channel, DelayPostponesDelivery) {
  Channel ch(CommConfig::delayed(/*drop_prob=*/0.0, /*delay=*/0.25, 0.1));
  util::Rng rng(1);
  ch.offer(make_msg(0.0), rng);
  EXPECT_TRUE(ch.collect(0.2).empty());
  const auto got = ch.collect(0.25);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].stamp(), 0.0);  // payload stamp unchanged
}

TEST(Channel, LostDropsEverything) {
  Channel ch(CommConfig::messages_lost(0.1));
  util::Rng rng(1);
  for (int step = 0; step < 100; ++step) {
    ch.offer(make_msg(step * 0.1), rng);
  }
  EXPECT_TRUE(ch.collect(100.0).empty());
  EXPECT_EQ(ch.dropped_count(), 100u);
}

TEST(Channel, DropProbabilityStatistics) {
  Channel ch(CommConfig::delayed(/*drop_prob=*/0.4, /*delay=*/0.0, 0.1));
  util::Rng rng(7);
  const int n = 20000;
  for (int step = 0; step < n; ++step) {
    ch.offer(make_msg(step * 0.1), rng);
  }
  const auto got = ch.collect(1e9);
  EXPECT_NEAR(static_cast<double>(got.size()) / n, 0.6, 0.02);
  EXPECT_EQ(got.size() + ch.dropped_count(), static_cast<std::size_t>(n));
}

TEST(Channel, DeliveryOrderIsByDeliveryTime) {
  Channel ch(CommConfig::delayed(0.0, 0.25, 0.1));
  util::Rng rng(1);
  ch.offer(make_msg(0.0), rng);
  ch.offer(make_msg(0.1), rng);
  ch.offer(make_msg(0.2), rng);
  const auto got = ch.collect(1.0);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_LT(got[0].stamp(), got[1].stamp());
  EXPECT_LT(got[1].stamp(), got[2].stamp());
}

TEST(Channel, CollectIsDestructive) {
  Channel ch(CommConfig::no_disturbance(0.1));
  util::Rng rng(1);
  ch.offer(make_msg(0.0), rng);
  EXPECT_EQ(ch.collect(0.0).size(), 1u);
  EXPECT_TRUE(ch.collect(0.0).empty());
  EXPECT_EQ(ch.in_flight(), 0u);
}

TEST(Channel, DeterministicGivenSeed) {
  for (int run = 0; run < 2; ++run) {
    Channel ch(CommConfig::delayed(0.5, 0.25, 0.1));
    util::Rng rng(42);
    std::size_t delivered = 0;
    for (int step = 0; step < 100; ++step) {
      ch.offer(make_msg(step * 0.1), rng);
      delivered += ch.collect(step * 0.1).size();
    }
    static std::size_t first_run = 0;
    if (run == 0) {
      first_run = delivered;
    } else {
      EXPECT_EQ(delivered, first_run);
    }
  }
}

TEST(CommConfig, BurstyStationaryDropProbability) {
  const auto c = CommConfig::bursty(/*bad_fraction=*/0.25,
                                    /*mean_burst_len=*/5.0);
  EXPECT_TRUE(c.burst);
  EXPECT_NEAR(c.stationary_drop_prob(), 0.25, 1e-9);
  EXPECT_NEAR(c.p_bad_to_good, 0.2, 1e-12);
  EXPECT_NE(c.label().find("bursty"), std::string::npos);
  // Non-burst config reports its plain drop probability.
  EXPECT_EQ(CommConfig::delayed(0.3).stationary_drop_prob(), 0.3);
  EXPECT_EQ(CommConfig::messages_lost().stationary_drop_prob(), 1.0);
}

TEST(Channel, BurstyLossMatchesStationaryRate) {
  Channel ch(CommConfig::bursty(0.3, 4.0, 0.0, 0.1));
  util::Rng rng(11);
  const int n = 40000;
  for (int step = 0; step < n; ++step) {
    ch.offer(make_msg(step * 0.1), rng);
  }
  const double delivered =
      static_cast<double>(ch.collect(1e9).size()) / n;
  EXPECT_NEAR(delivered, 0.7, 0.02);
}

TEST(Channel, BurstyLossesAreClustered) {
  // Compare the number of loss "runs": for the same stationary drop rate,
  // the bursty channel produces far fewer (longer) runs than i.i.d.
  auto loss_runs = [](const CommConfig& cfg, std::uint64_t seed) {
    Channel ch(cfg);
    util::Rng rng(seed);
    const int n = 20000;
    int runs = 0;
    bool prev_lost = false;
    std::size_t delivered_before = 0;
    for (int step = 0; step < n; ++step) {
      ch.offer(make_msg(step * 0.1), rng);
      const std::size_t delivered = delivered_before;
      const std::size_t now = ch.sent_count() - ch.dropped_count();
      const bool lost = (now == delivered);
      delivered_before = now;
      if (lost && !prev_lost) ++runs;
      prev_lost = lost;
    }
    return runs;
  };
  const int runs_iid = loss_runs(CommConfig::delayed(0.3, 0.0, 0.1), 5);
  const int runs_burst = loss_runs(CommConfig::bursty(0.3, 6.0, 0.0, 0.1), 5);
  EXPECT_LT(runs_burst, runs_iid / 2);
}

TEST(Channel, EqualDeliveryTimesDrainFifo) {
  // Regression for the enqueue seam: fault decorators (and delay-free
  // configs) can put several messages on the same delivery instant; they
  // must drain in enqueue order, not in priority-queue heap order.
  Channel ch(CommConfig::no_disturbance(0.1));
  for (int i = 0; i < 8; ++i) {
    ch.enqueue(make_msg(0.0, /*p=*/static_cast<double>(i)), 1.0);
  }
  const auto got = ch.collect(1.0);
  ASSERT_EQ(got.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)].data.state.p,
              static_cast<double>(i))
        << "position " << i;
  }
}

TEST(Channel, EnqueueSeamMatchesOffer) {
  // offer() == admit() + enqueue(stamp + delay), bit for bit.
  const auto cfg = CommConfig::delayed(0.4, 0.25, 0.1);
  Channel direct(cfg), seam(cfg);
  util::Rng r1(21), r2(21);
  for (int step = 0; step < 200; ++step) {
    const double t = step * 0.05;
    const Message msg = make_msg(t, t);
    direct.offer(msg, r1);
    if (seam.admit(msg, r2)) {
      seam.enqueue(msg, msg.stamp() + cfg.delay);
    }
    const auto a = direct.collect(t);
    const auto b = seam.collect(t);
    ASSERT_EQ(a.size(), b.size()) << "t = " << t;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].stamp(), b[i].stamp());
    }
  }
  EXPECT_EQ(direct.sent_count(), seam.sent_count());
  EXPECT_EQ(direct.dropped_count(), seam.dropped_count());
}

TEST(CommConfig, ValidateRejectsBadValues) {
  util::ScopedContractMode mode(util::ContractMode::kThrow);
  const double nan = std::numeric_limits<double>::quiet_NaN();

  CommConfig c;
  c.period = 0.0;
  EXPECT_THROW(c.validate(), util::ContractViolation);
  c = CommConfig{};
  c.delay = -0.1;
  EXPECT_THROW(c.validate(), util::ContractViolation);
  c = CommConfig{};
  c.drop_prob = 1.5;
  EXPECT_THROW(c.validate(), util::ContractViolation);
  // NaN fails every ordered comparison: each field must reject it.
  c = CommConfig{};
  c.period = nan;
  EXPECT_THROW(c.validate(), util::ContractViolation);
  c = CommConfig{};
  c.delay = nan;
  EXPECT_THROW(c.validate(), util::ContractViolation);
  c = CommConfig{};
  c.drop_prob = nan;
  EXPECT_THROW(c.validate(), util::ContractViolation);
  c = CommConfig{};
  c.burst = true;
  c.p_good_to_bad = nan;
  EXPECT_THROW(Channel{c}, util::ContractViolation);
}

TEST(Channel, NonTransmissionStepsIgnored) {
  Channel ch(CommConfig::no_disturbance(0.1));
  util::Rng rng(1);
  ch.offer(make_msg(0.0), rng);
  ch.offer(make_msg(0.05), rng);  // between transmission instants
  EXPECT_EQ(ch.sent_count(), 1u);
}

}  // namespace
}  // namespace cvsafe::comm
