#include "cvsafe/util/interval.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "cvsafe/util/contracts.hpp"
#include "cvsafe/util/rng.hpp"

namespace cvsafe::util {
namespace {

TEST(Interval, EmptyBasics) {
  const Interval e = Interval::empty_interval();
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.width(), 0.0);
  EXPECT_FALSE(e.contains(0.0));
}

TEST(Interval, PointAndCentered) {
  const Interval p = Interval::point(3.0);
  EXPECT_FALSE(p.empty());
  EXPECT_EQ(p.width(), 0.0);
  EXPECT_TRUE(p.contains(3.0));

  const Interval c = Interval::centered(5.0, 2.0);
  EXPECT_EQ(c.lo, 3.0);
  EXPECT_EQ(c.hi, 7.0);
  EXPECT_EQ(c.mid(), 5.0);
}

TEST(Interval, ContainsScalar) {
  const Interval iv{1.0, 4.0};
  EXPECT_TRUE(iv.contains(1.0));
  EXPECT_TRUE(iv.contains(4.0));
  EXPECT_TRUE(iv.contains(2.5));
  EXPECT_FALSE(iv.contains(0.999));
  EXPECT_FALSE(iv.contains(4.001));
}

TEST(Interval, ContainsInterval) {
  const Interval outer{0.0, 10.0};
  EXPECT_TRUE(outer.contains(Interval{2.0, 5.0}));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_TRUE(outer.contains(Interval::empty_interval()));
  EXPECT_FALSE(outer.contains(Interval{-1.0, 5.0}));
  EXPECT_FALSE(outer.contains(Interval{5.0, 11.0}));
}

TEST(Interval, Intersects) {
  EXPECT_TRUE((Interval{0.0, 2.0}).intersects(Interval{2.0, 4.0}));  // touch
  EXPECT_TRUE((Interval{0.0, 3.0}).intersects(Interval{2.0, 4.0}));
  EXPECT_FALSE((Interval{0.0, 1.0}).intersects(Interval{2.0, 4.0}));
  EXPECT_FALSE(Interval::empty_interval().intersects(Interval{0.0, 1.0}));
}

TEST(Interval, IntersectComputesOverlap) {
  const Interval r = Interval{0.0, 3.0}.intersect(Interval{2.0, 5.0});
  EXPECT_EQ(r.lo, 2.0);
  EXPECT_EQ(r.hi, 3.0);
  const Interval disjoint = Interval{0.0, 1.0}.intersect(Interval{2.0, 3.0});
  EXPECT_TRUE(disjoint.empty());
}

TEST(Interval, HullCoversBoth) {
  const Interval h = Interval{0.0, 1.0}.hull(Interval{3.0, 4.0});
  EXPECT_EQ(h.lo, 0.0);
  EXPECT_EQ(h.hi, 4.0);
  EXPECT_EQ(Interval::empty_interval().hull(Interval{1.0, 2.0}),
            (Interval{1.0, 2.0}));
}

TEST(Interval, ShiftAndInflate) {
  const Interval iv{1.0, 2.0};
  EXPECT_EQ(iv.shifted(3.0), (Interval{4.0, 5.0}));
  EXPECT_EQ(iv.inflated(0.5), (Interval{0.5, 2.5}));
  EXPECT_TRUE(Interval::empty_interval().shifted(1.0).empty());
}

TEST(Interval, MinkowskiSum) {
  EXPECT_EQ((Interval{1.0, 2.0} + Interval{10.0, 20.0}),
            (Interval{11.0, 22.0}));
  EXPECT_TRUE((Interval::empty_interval() + Interval{0.0, 1.0}).empty());
}

TEST(Interval, ClampIntoInterval) {
  const Interval iv{-1.0, 1.0};
  EXPECT_EQ(iv.clamp(-5.0), -1.0);
  EXPECT_EQ(iv.clamp(0.3), 0.3);
  EXPECT_EQ(iv.clamp(9.0), 1.0);
}

TEST(Interval, Everything) {
  const Interval all = Interval::everything();
  EXPECT_TRUE(all.contains(1e300));
  EXPECT_TRUE(all.contains(-1e300));
}

// Property: intersection is the largest interval contained in both.
TEST(IntervalProperty, IntersectionIsSubsetOfBoth) {
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const Interval a{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const Interval b{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const Interval r = a.intersect(b);
    if (!r.empty()) {
      EXPECT_TRUE(a.contains(r));
      EXPECT_TRUE(b.contains(r));
    } else {
      EXPECT_TRUE(a.empty() || b.empty() || !a.intersects(b));
    }
  }
}

// Property: hull contains both operands and intersect/hull are monotone.
TEST(IntervalProperty, HullContainsOperands) {
  Rng rng(101);
  for (int i = 0; i < 2000; ++i) {
    const Interval a{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const Interval b{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const Interval h = a.hull(b);
    EXPECT_TRUE(h.contains(a));
    EXPECT_TRUE(h.contains(b));
  }
}

// A NaN endpoint would read as *non-empty* (lo > hi compares false) while
// containing nothing, silently voiding every downstream safety check. The
// constructor must reject it.
TEST(IntervalContract, NanEndpointsAreRejected) {
  ScopedContractMode mode(ContractMode::kThrow);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((Interval{nan, 1.0}), ContractViolation);
  EXPECT_THROW((Interval{1.0, nan}), ContractViolation);
  EXPECT_THROW((Interval{nan, nan}), ContractViolation);
  EXPECT_THROW(Interval::point(nan), ContractViolation);
}

TEST(IntervalContract, InfiniteEndpointsAreFine) {
  const double inf = std::numeric_limits<double>::infinity();
  const Interval whole{-inf, inf};
  EXPECT_FALSE(whole.empty());
  EXPECT_TRUE(whole.contains(0.0));
  EXPECT_FALSE((Interval{0.0, inf}).empty());
}

// Pins the documented empty-interval width convention: 0, NOT the
// (negative) endpoint difference. The sound verifier's bisection
// termination accumulates widths over partitions and relies on this.
TEST(IntervalContract, EmptyWidthIsZero) {
  EXPECT_EQ(Interval::empty_interval().width(), 0.0);
  EXPECT_EQ((Interval{3.0, 1.0}).width(), 0.0);
  EXPECT_EQ((Interval{5.0, 5.0}).width(), 0.0);  // point, not empty
}

// Pins the documented centered() behavior: zero radius yields a point
// (never empty), negative radius violates the contract.
TEST(IntervalContract, CenteredNeverProducesEmpty) {
  const Interval p = Interval::centered(2.0, 0.0);
  EXPECT_FALSE(p.empty());
  EXPECT_EQ(p.lo, 2.0);
  EXPECT_EQ(p.hi, 2.0);

  ScopedContractMode mode(ContractMode::kThrow);
  EXPECT_THROW(Interval::centered(2.0, -1.0), ContractViolation);
}

}  // namespace
}  // namespace cvsafe::util
