// End-to-end pin of the fault-injection campaign: the safety invariant
// eta(kappa_c) >= 0 must hold in every cell, and the campaign CSV must be
// byte-identical across runs, thread counts, and against the committed
// golden (the same artifact the CI fault-campaign job checks).
//
// Regenerate the golden (only when a behavior change is intended) with:
//   CVSAFE_UPDATE_GOLDEN=1 ./fault_campaign_test

#include "cvsafe/sim/fault_campaign.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "cvsafe/util/contracts.hpp"

namespace cvsafe::sim {
namespace {

using util::ContractMode;
using util::ContractViolation;
using util::ScopedContractMode;

TEST(CampaignConfig, ValidateRejectsBadShapes) {
  ScopedContractMode mode(ContractMode::kThrow);
  CampaignConfig c = CampaignConfig::smoke();
  c.faults.clear();
  EXPECT_THROW(c.validate(), ContractViolation);
  c = CampaignConfig::smoke();
  c.scenarios.clear();
  EXPECT_THROW(c.validate(), ContractViolation);
  c = CampaignConfig::smoke();
  c.episodes_per_cell = 0;
  EXPECT_THROW(c.validate(), ContractViolation);
  c = CampaignConfig::smoke();
  c.faults.push_back("no-such-fault");
  EXPECT_THROW(c.validate(), ContractViolation);
  c = CampaignConfig::smoke();
  c.scenarios.push_back("no-such-scenario");
  EXPECT_THROW(c.validate(), ContractViolation);
}

TEST(CampaignConfig, CiCoversTheIssueMatrix) {
  const auto c = CampaignConfig::ci();
  EXPECT_EQ(c.faults.size(), 5u);
  EXPECT_EQ(c.scenarios.size(), 4u);
  EXPECT_GE(c.episodes_per_cell, 8u);
  c.validate();
}

// Regression: min_eta/mean_eta must initialize from the batch, not the
// struct's 0.0 defaults — folding min against a default 0.0 used to mask
// any all-positive minimum as 0.
TEST(FaultCampaign, AggregateCellInitializesEtaFromFirstEpisode) {
  std::vector<RunResult> results(3);
  results[0].eta = 0.4;
  results[1].eta = 0.25;
  results[2].eta = 0.7;
  results[1].messages_accepted = 9;
  results[1].messages_rejected = 1;
  const CampaignCell cell = aggregate_cell("f", "s", results);
  EXPECT_DOUBLE_EQ(cell.min_eta, 0.25);  // not 0.0
  EXPECT_DOUBLE_EQ(cell.mean_eta, (0.4 + 0.25 + 0.7) / 3.0);
  EXPECT_DOUBLE_EQ(cell.rejection_rate(), 0.1);

  // A single all-negative episode must surface its own eta too.
  std::vector<RunResult> negative(1);
  negative[0].eta = -0.3;
  negative[0].collided = true;
  const CampaignCell bad = aggregate_cell("f", "s", negative);
  EXPECT_DOUBLE_EQ(bad.min_eta, -0.3);
  EXPECT_DOUBLE_EQ(bad.mean_eta, -0.3);
  EXPECT_FALSE(bad.invariant_ok());
}

TEST(FaultCampaign, AggregateCellRejectsEmptyBatches) {
  ScopedContractMode mode(ContractMode::kThrow);
  const std::vector<RunResult> empty;
  EXPECT_THROW(aggregate_cell("f", "s", empty), ContractViolation);
}

TEST(FaultCampaign, RejectionRateIsZeroWithoutTraffic) {
  const CampaignCell cell;
  EXPECT_DOUBLE_EQ(cell.rejection_rate(), 0.0);
}

TEST(FaultCampaign, SmokeInvariantHoldsAndIsReproducible) {
  auto config = CampaignConfig::smoke();
  config.threads = 1;
  const CampaignResult a = run_fault_campaign(config);
  ASSERT_EQ(a.cells.size(),
            config.faults.size() * config.scenarios.size());
  EXPECT_TRUE(a.invariant_ok());
  EXPECT_EQ(a.violations(), 0u);
  for (const auto& cell : a.cells) {
    EXPECT_EQ(cell.episodes, config.episodes_per_cell);
    EXPECT_EQ(cell.collisions, 0u);
    EXPECT_GE(cell.min_eta, 0.0) << cell.fault << " x " << cell.scenario;
    EXPECT_GT(cell.steps, 0u);
  }

  // Byte-identical across a second run and across thread counts.
  const std::string csv = campaign_csv(a);
  EXPECT_EQ(csv, campaign_csv(run_fault_campaign(config)));
  config.threads = 2;
  EXPECT_EQ(csv, campaign_csv(run_fault_campaign(config)));
}

TEST(FaultCampaign, CsvHasOneRowPerCellPlusHeader) {
  auto config = CampaignConfig::smoke();
  config.threads = 1;
  const auto result = run_fault_campaign(config);
  std::istringstream csv(campaign_csv(result));
  std::string line;
  ASSERT_TRUE(std::getline(csv, line));
  EXPECT_EQ(line.substr(0, 14), "fault,scenario");
  std::size_t rows = 0;
  while (std::getline(csv, line)) ++rows;
  EXPECT_EQ(rows, result.cells.size());
}

// The CI matrix against the committed golden — the exact byte stream the
// .github fault-campaign job reproduces and compares.
TEST(FaultCampaign, CiMatrixMatchesCommittedGolden) {
  const std::string path =
      std::string(CVSAFE_GOLDEN_DIR) + "/fault_campaign_ci.csv";
  const auto result = run_fault_campaign(CampaignConfig::ci());
  EXPECT_TRUE(result.invariant_ok());
  const std::string csv = campaign_csv(result);

  if (std::getenv("CVSAFE_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << csv;
    GTEST_SKIP() << "golden regenerated: " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " — regenerate with CVSAFE_UPDATE_GOLDEN=1";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(csv, golden.str())
      << "campaign CSV diverged from the committed golden";
}

}  // namespace
}  // namespace cvsafe::sim
