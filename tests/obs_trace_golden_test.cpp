// Golden-file pin of the structured JSONL event trace.
//
// A scripted left-turn episode pair runs in the fault campaign's
// robustness posture (corruption faults over the delayed channel,
// hardened plausibility gate, armed degradation ladder, expert compound
// planner) with an obs::Recorder mounted. The serialized trace is pinned
// byte-for-byte to a committed golden and asserted identical across
// repeated runs and across thread counts — the determinism claim the
// whole tracing design rests on (per-episode buffering + seed-ordered
// serialization).
//
// Regenerate (only when a behavior or schema change is intended) with:
//   CVSAFE_UPDATE_GOLDEN=1 ./obs_trace_golden_test

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cvsafe/comm/channel.hpp"
#include "cvsafe/core/degradation.hpp"
#include "cvsafe/fault/fault_plan.hpp"
#include "cvsafe/filter/plausibility.hpp"
#include "cvsafe/sim/left_turn.hpp"
#include "cvsafe/sim/trace.hpp"

namespace {

using namespace cvsafe;

constexpr std::size_t kEpisodes = 2;
constexpr std::uint64_t kSeed = 2026;

/// The campaign's left-turn cell under the "corruption" fault condition.
sim::LeftTurnAdapter make_adapter() {
  sim::LeftTurnSimConfig config = sim::LeftTurnSimConfig::paper_defaults();
  config.comm = comm::CommConfig::delayed(/*drop_prob=*/0.2, /*delay=*/0.25);
  const auto plan = fault::FaultPlan::preset("corruption");
  EXPECT_TRUE(plan.has_value());
  config.faults = *plan;
  config.gate = filter::GateConfig::hardened();
  config.ladder = core::LadderConfig{};

  sim::AgentBlueprint bp;
  bp.name = "expert-compound";
  bp.scenario = config.make_scenario();
  bp.sensor = config.sensor;
  bp.config = sim::AgentConfig::ultimate_compound();
  bp.config.use_expert_planner = true;
  bp.config.gate = config.gate;
  bp.config.ladder = config.ladder;
  return sim::LeftTurnAdapter(config, bp);
}

std::string trace_text(std::size_t threads) {
  const sim::LeftTurnAdapter adapter = make_adapter();
  std::ostringstream os;
  sim::run_traced_episodes(adapter, kEpisodes, kSeed, threads,
                           sim::SeedPolicy::kDerived, os, "left-turn",
                           "corruption");
  return os.str();
}

TEST(ObsTraceGolden, ByteIdenticalAcrossRunsAndThreadCounts) {
  const std::string first = trace_text(/*threads=*/2);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, trace_text(/*threads=*/2)) << "trace differs across runs";
  EXPECT_EQ(first, trace_text(/*threads=*/1))
      << "trace depends on thread count";
}

TEST(ObsTraceGolden, TracedResultsMatchPlainEngine) {
  // Mounting the recorder must not perturb the closed loop: the traced
  // batch returns the exact outcomes of the untraced one.
  const sim::LeftTurnAdapter adapter = make_adapter();
  const auto plain = sim::run_episodes(adapter, kEpisodes, kSeed,
                                       /*threads=*/1,
                                       sim::SeedPolicy::kDerived);
  std::ostringstream os;
  const auto traced = sim::run_traced_episodes(
      adapter, kEpisodes, kSeed, /*threads=*/1, sim::SeedPolicy::kDerived,
      os, "left-turn", "corruption");
  ASSERT_EQ(plain.size(), traced.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].collided, traced[i].collided);
    EXPECT_EQ(plain[i].reached, traced[i].reached);
    EXPECT_EQ(plain[i].steps, traced[i].steps);
    EXPECT_DOUBLE_EQ(plain[i].eta, traced[i].eta);
    EXPECT_EQ(plain[i].messages_rejected, traced[i].messages_rejected);
  }
}

TEST(ObsTraceGolden, ContainsTheInstrumentedEventTypes) {
  const std::string trace = trace_text(/*threads=*/1);
  // One step line per control step and exactly one wrap-up per episode.
  EXPECT_NE(trace.find("\"type\":\"step\""), std::string::npos);
  EXPECT_NE(trace.find("\"type\":\"episode_end\""), std::string::npos);
  // The corruption plan perturbs payloads over a dropping channel, so
  // fault actions and hardened-gate rejections must surface.
  EXPECT_NE(trace.find("\"type\":\"fault\""), std::string::npos);
  EXPECT_NE(trace.find("\"type\":\"gate_reject\""), std::string::npos);
  // A truncated trace must never pass as golden input.
  EXPECT_EQ(trace.find("\"type\":\"trace_dropped\""), std::string::npos);
}

TEST(ObsTraceGolden, MatchesCommittedGolden) {
  const std::string path =
      std::string(CVSAFE_GOLDEN_DIR) + "/left_turn_trace.jsonl";
  std::vector<std::string> lines;
  {
    std::istringstream in(trace_text(/*threads=*/2));
    for (std::string line; std::getline(in, line);) lines.push_back(line);
  }
  ASSERT_FALSE(lines.empty());

  if (std::getenv("CVSAFE_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    for (const auto& line : lines) out << line << '\n';
    GTEST_SKIP() << "golden regenerated: " << path << " (" << lines.size()
                 << " lines)";
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " — regenerate with CVSAFE_UPDATE_GOLDEN=1";
  std::vector<std::string> golden;
  for (std::string line; std::getline(in, line);) golden.push_back(line);

  ASSERT_EQ(lines.size(), golden.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    ASSERT_EQ(lines[i], golden[i]) << "first divergence at line " << i + 1;
  }
}

}  // namespace
