#include "cvsafe/filter/reachability.hpp"

#include <gtest/gtest.h>

#include "cvsafe/util/rng.hpp"
#include "cvsafe/vehicle/accel_profile.hpp"
#include "cvsafe/vehicle/dynamics.hpp"

namespace cvsafe::filter {
namespace {

const vehicle::VehicleLimits kLimits{2.0, 15.0, -3.0, 3.0};

TEST(StateBounds, ExactIsPoint) {
  const auto b = StateBounds::exact(1.0, 5.0, 8.0);
  EXPECT_EQ(b.p.width(), 0.0);
  EXPECT_EQ(b.v.width(), 0.0);
  EXPECT_TRUE(b.p.contains(5.0));
}

TEST(StateBounds, FromMeasurementClipsVelocity) {
  // Measured velocity 16 with +-1 noise: physical range caps at 15.
  const auto b = StateBounds::from_measurement(0.0, 0.0, 16.0, 1.0, 1.0,
                                               kLimits);
  EXPECT_LE(b.v.hi, kLimits.v_max);
  EXPECT_GE(b.v.lo, kLimits.v_min);
  // Fully out-of-range measurement degrades to the nearest feasible point.
  const auto c = StateBounds::from_measurement(0.0, 0.0, 30.0, 1.0, 1.0,
                                               kLimits);
  EXPECT_FALSE(c.v.empty());
}

TEST(Propagate, ZeroOrNegativeDtIsIdentity) {
  const auto b = StateBounds::exact(2.0, 5.0, 8.0);
  const auto same = propagate(b, 2.0, kLimits);
  EXPECT_EQ(same.p, b.p);
  const auto past = propagate(b, 1.0, kLimits);
  EXPECT_EQ(past.p, b.p);
}

TEST(Propagate, MatchesEquation2FirstBranch) {
  // Below v_max throughout: p_max = p + v dt + a_max dt^2 / 2.
  const auto b = StateBounds::exact(0.0, 0.0, 8.0);
  const auto r = propagate(b, 1.0, kLimits);
  EXPECT_NEAR(r.p.hi, 8.0 + 0.5 * 3.0, 1e-12);
  // Lower: full braking from 8 to floor 2 takes 2 s; within 1 s: 8 - 1.5.
  EXPECT_NEAR(r.p.lo, 8.0 - 1.5, 1e-12);
  EXPECT_NEAR(r.v.hi, 11.0, 1e-12);
  EXPECT_NEAR(r.v.lo, 5.0, 1e-12);
}

TEST(Propagate, MatchesEquation2SecondBranch) {
  // Saturation: v=14, a_max=3 hits v_max=15 after 1/3 s.
  const auto b = StateBounds::exact(0.0, 0.0, 14.0);
  const auto r = propagate(b, 2.0, kLimits);
  const double t_hit = 1.0 / 3.0;
  const double expected =
      14.0 * t_hit + 0.5 * 3.0 * t_hit * t_hit + 15.0 * (2.0 - t_hit);
  EXPECT_NEAR(r.p.hi, expected, 1e-12);
  EXPECT_NEAR(r.v.hi, 15.0, 1e-12);
}

TEST(Propagate, WidthGrowsWithHorizon) {
  const auto b = StateBounds::exact(0.0, 0.0, 8.0);
  double prev = 0.0;
  for (double dt = 0.5; dt <= 5.0; dt += 0.5) {
    const auto r = propagate(b, dt, kLimits);
    EXPECT_GT(r.p.width(), prev);
    prev = r.p.width();
  }
}

// Soundness (DESIGN.md invariant 2): the true state of a vehicle driving
// ANY feasible acceleration profile stays inside the propagated bounds —
// from an exact snapshot and from a noisy measurement.
TEST(PropagateProperty, SoundForRandomTrajectories) {
  util::Rng rng(21);
  const double dt_c = 0.05;
  for (int trial = 0; trial < 300; ++trial) {
    vehicle::DoubleIntegrator dyn(kLimits);
    vehicle::VehicleState s{rng.uniform(-60, 0),
                            rng.uniform(kLimits.v_min, kLimits.v_max)};
    const auto profile =
        vehicle::AccelProfile::random(100, dt_c, s.v, kLimits, {}, rng);

    const auto exact = StateBounds::exact(0.0, s.p, s.v);
    const double noise_p = 1.5, noise_v = 1.0;
    const auto noisy = StateBounds::from_measurement(
        0.0, s.p + rng.uniform(-noise_p, noise_p),
        s.v + rng.uniform(-noise_v, noise_v), noise_p, noise_v, kLimits);

    for (std::size_t step = 0; step < profile.size(); ++step) {
      s = dyn.step(s, profile.at(step), dt_c);
      const double t = static_cast<double>(step + 1) * dt_c;
      const auto re = propagate(exact, t, kLimits);
      ASSERT_TRUE(re.p.contains(s.p))
          << "exact p bound violated at t=" << t;
      ASSERT_TRUE(re.v.contains(s.v))
          << "exact v bound violated at t=" << t;
      const auto rn = propagate(noisy, t, kLimits);
      ASSERT_TRUE(rn.p.inflated(1e-9).contains(s.p))
          << "noisy p bound violated at t=" << t;
      ASSERT_TRUE(rn.v.inflated(1e-9).contains(s.v))
          << "noisy v bound violated at t=" << t;
    }
  }
}

// Property: propagation is monotone in the input set (bigger in, bigger
// out) — needed for the interval intersection in the information filter
// to stay sound.
TEST(PropagateProperty, MonotoneInInputSet) {
  util::Rng rng(22);
  for (int trial = 0; trial < 500; ++trial) {
    const double p = rng.uniform(-50, 0);
    const double v = rng.uniform(3, 14);
    StateBounds small{0.0,
                      util::Interval::centered(p, rng.uniform(0.1, 1.0)),
                      util::Interval::centered(v, rng.uniform(0.1, 0.5))
                          .intersect({kLimits.v_min, kLimits.v_max})};
    StateBounds big{0.0, small.p.inflated(rng.uniform(0.0, 2.0)),
                    small.v.inflated(rng.uniform(0.0, 1.0))
                        .intersect({kLimits.v_min, kLimits.v_max})};
    const double dt = rng.uniform(0.1, 5.0);
    const auto rs = propagate(small, dt, kLimits);
    const auto rb = propagate(big, dt, kLimits);
    EXPECT_TRUE(rb.p.contains(rs.p));
    EXPECT_TRUE(rb.v.contains(rs.v));
  }
}

}  // namespace
}  // namespace cvsafe::filter
