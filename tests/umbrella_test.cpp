// The umbrella header must compile standalone and expose the whole API.

#include "cvsafe/cvsafe.hpp"

#include <gtest/gtest.h>

namespace cvsafe {
namespace {

TEST(Umbrella, ExposesEveryModule) {
  // One symbol per module proves the include set is complete.
  EXPECT_STREQ(core::version(), "1.0.0");
  const util::Interval iv{0.0, 1.0};
  EXPECT_TRUE(iv.contains(0.5));
  const util::IntervalSet ivs{{0.0, 1.0}};
  EXPECT_TRUE(ivs.contains(0.5));
  const vehicle::VehicleLimits limits{};
  EXPECT_TRUE(limits.valid());
  EXPECT_EQ(comm::CommConfig::no_disturbance().label(), "no disturbance");
  EXPECT_EQ(sensing::SensorConfig::uniform(1.0).delta_p, 1.0);
  EXPECT_FALSE(filter::NaiveExtrapolator{}.estimate(0.0).valid);
  EXPECT_EQ(nn::Matrix::identity(2)(0, 0), 1.0);
  const scenario::LeftTurnGeometry lt{};
  EXPECT_TRUE(lt.valid());
  const scenario::LaneChangeGeometry lc{};
  EXPECT_TRUE(lc.valid());
  const scenario::IntersectionGeometry ix{};
  EXPECT_TRUE(ix.valid());
  EXPECT_STREQ(planners::planner_style_name(
                   planners::PlannerStyle::kConservative),
               "conservative");
  EXPECT_EQ(eval::SimConfig::paper_defaults().dt_c, 0.05);
  verify::Certificate cert;
  EXPECT_TRUE(cert.holds());
}

}  // namespace
}  // namespace cvsafe
