// Property tests for the zero-allocation inference path: forward_into,
// predict_scalar and plan_batch must be bit-identical to the allocating
// infer()/predict() path, across randomized architectures, activations and
// batch sizes. Matrix equality below is the defaulted operator== on the
// raw double storage, i.e. exact bit comparison for all finite values.

#include <array>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "cvsafe/nn/matrix.hpp"
#include "cvsafe/nn/mlp.hpp"
#include "cvsafe/nn/workspace.hpp"
#include "cvsafe/planners/nn_planner.hpp"
#include "cvsafe/util/rng.hpp"

namespace {

using cvsafe::nn::Matrix;
using cvsafe::nn::Mlp;
using cvsafe::nn::MlpSpec;
using cvsafe::nn::Workspace;

Matrix random_matrix(std::size_t r, std::size_t c, cvsafe::util::Rng& rng) {
  Matrix m(r, c);
  for (auto& x : m.data()) x = rng.uniform(-2.0, 2.0);
  return m;
}

TEST(NnWorkspaceTest, MatmulIntoMatchesAllocatingMatmul) {
  cvsafe::util::Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 17));
    const auto k = static_cast<std::size_t>(rng.uniform_int(1, 65));
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 40));
    const Matrix a = random_matrix(m, k, rng);
    const Matrix b = random_matrix(k, n, rng);
    Matrix out;
    cvsafe::nn::matmul_into(a, b, out);
    EXPECT_EQ(out, a.matmul(b));

    const Matrix bt = random_matrix(n, k, rng);
    Matrix out_t;
    cvsafe::nn::matmul_transposed_into(a, bt, out_t);
    EXPECT_EQ(out_t, a.matmul_transposed(bt));
  }
}

TEST(NnWorkspaceTest, MatmulSparseAndDensePathsAgree) {
  // Force the exact-zero skip path (mostly zeros, size above the probe
  // threshold) and check it against the same product computed densely.
  cvsafe::util::Rng rng(12);
  Matrix a(70, 70);
  for (auto& x : a.data()) x = rng.uniform01() < 0.05 ? rng.uniform(-1, 1) : 0.0;
  const Matrix b = random_matrix(70, 33, rng);

  Matrix dense = a;  // same values, but break sparsity with a dense twin
  Matrix expected(70, 33);
  for (std::size_t i = 0; i < 70; ++i)
    for (std::size_t j = 0; j < 33; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < 70; ++k) s += a(i, k) * b(k, j);
      expected(i, j) = s;
    }
  // The kernels accumulate k-ascending exactly like the loop above, and
  // skipping exact zeros never changes a finite accumulator.
  EXPECT_EQ(a.matmul(b), expected);
  EXPECT_EQ(dense.matmul(b), expected);
}

MlpSpec random_spec(cvsafe::util::Rng& rng) {
  MlpSpec spec;
  const auto depth = rng.uniform_int(1, 4);  // 1..4 hidden layers (inclusive)
  spec.layer_sizes.push_back(static_cast<std::size_t>(rng.uniform_int(1, 9)));
  for (int i = 0; i < depth; ++i) {
    spec.layer_sizes.push_back(static_cast<std::size_t>(rng.uniform_int(1, 48)));
  }
  spec.layer_sizes.push_back(1);
  const std::array<cvsafe::nn::Activation, 3> acts{
      cvsafe::nn::Activation::kTanh, cvsafe::nn::Activation::kRelu,
      cvsafe::nn::Activation::kSigmoid};
  spec.hidden_activation = acts[static_cast<std::size_t>(rng.uniform_int(0, 2))];
  return spec;
}

TEST(NnWorkspaceTest, ForwardIntoBitIdenticalToInfer) {
  cvsafe::util::Rng rng(21);
  for (int trial = 0; trial < 12; ++trial) {
    const MlpSpec spec = random_spec(rng);
    const Mlp net(spec, rng);
    Workspace ws;
    for (std::size_t batch : {std::size_t{1}, std::size_t{5}, std::size_t{64}}) {
      const Matrix x = random_matrix(batch, net.input_dim(), rng);
      const Matrix expected = net.infer(x);
      const Matrix& got = net.forward_into(x, ws);
      EXPECT_EQ(got, expected) << "trial " << trial << " batch " << batch;
    }
  }
}

TEST(NnWorkspaceTest, PredictScalarBitIdenticalToPredict) {
  cvsafe::util::Rng rng(22);
  for (int trial = 0; trial < 12; ++trial) {
    const MlpSpec spec = random_spec(rng);
    const Mlp net(spec, rng);
    Workspace ws;
    for (int rep = 0; rep < 5; ++rep) {
      std::vector<double> x(net.input_dim());
      for (auto& v : x) v = rng.uniform(-3.0, 3.0);
      EXPECT_EQ(net.predict_scalar(x, ws), net.predict(x)[0]);
    }
  }
}

TEST(NnWorkspaceTest, ForwardIntoAfterTrainingMutationStaysConsistent) {
  // mutable_weights() invalidates the transposed inference cache; the
  // dirty path must still agree with infer() bit-for-bit, and refreshing
  // must restore the fast path with identical results.
  cvsafe::util::Rng rng(23);
  MlpSpec spec;
  spec.layer_sizes = {4, 16, 1};
  Mlp net(spec, rng);
  const Matrix x = random_matrix(7, 4, rng);
  Workspace ws;

  Matrix& w = net.mutable_layer(0).mutable_weights();  // marks cache dirty
  for (auto& v : w.data()) v += 0.25;
  EXPECT_EQ(net.forward_into(x, ws), net.infer(x));

  net.refresh_inference_cache();
  EXPECT_EQ(net.forward_into(x, ws), net.infer(x));
}

TEST(NnWorkspaceTest, WorkspaceBuffersStableAcrossRepeatedCalls) {
  // After a warm-up call, repeated same-shape inference must reuse the
  // exact same storage (the zero-allocation property, observable here as
  // data-pointer stability; the bench harness checks the alloc counter).
  cvsafe::util::Rng rng(24);
  MlpSpec spec;
  spec.layer_sizes = {4, 32, 32, 1};
  const Mlp net(spec, rng);
  Workspace ws;
  const Matrix x = random_matrix(8, 4, rng);
  const Matrix& out1 = net.forward_into(x, ws);
  const double* p1 = out1.data().data();
  for (int rep = 0; rep < 10; ++rep) {
    const Matrix& out = net.forward_into(x, ws);
    EXPECT_EQ(out.data().data(), p1);
  }
}

TEST(NnWorkspaceTest, PlanBatchMatchesPlanPerWorld) {
  cvsafe::util::Rng rng(25);
  MlpSpec spec;
  spec.layer_sizes = {cvsafe::planners::InputEncoding::dim(), 24, 24, 1};
  auto net = std::make_shared<const Mlp>(Mlp(spec, rng));
  cvsafe::planners::NnPlanner planner(net, cvsafe::planners::InputEncoding{},
                                      "test");
  cvsafe::planners::NnPlanner planner_batch(
      net, cvsafe::planners::InputEncoding{}, "test-batch");

  std::vector<cvsafe::scenario::LeftTurnWorld> worlds(17);
  for (auto& w : worlds) {
    w.t = rng.uniform(0.0, 10.0);
    w.ego.p = rng.uniform(-40.0, 5.0);
    w.ego.v = rng.uniform(0.0, 15.0);
    w.tau1_nn = rng.uniform01() < 0.2
                    ? cvsafe::util::Interval::empty_interval()
                    : cvsafe::util::Interval{w.t + rng.uniform(0.0, 5.0),
                                             w.t + rng.uniform(5.0, 12.0)};
  }

  std::vector<double> batched(worlds.size());
  planner_batch.plan_batch(worlds, batched);
  for (std::size_t i = 0; i < worlds.size(); ++i) {
    EXPECT_EQ(batched[i], planner.plan(worlds[i])) << "world " << i;
  }
}

}  // namespace
