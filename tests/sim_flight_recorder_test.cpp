#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "cvsafe/adv/search.hpp"
#include "cvsafe/obs/flight_recorder.hpp"
#include "cvsafe/obs/metrics.hpp"
#include "cvsafe/sim/fault_campaign.hpp"
#include "cvsafe/sim/fleet.hpp"
#include "cvsafe/sim/left_turn.hpp"

/// \file sim_flight_recorder_test.cpp
/// The flight recorder's fleet-level determinism contract: a hardened
/// campaign cell with recorders armed produces at least one triggered
/// dump, and the dump bytes (and the deterministic telemetry fold) are
/// identical across thread counts, pool capacities and the batched /
/// reference engines. Also covers the campaign-level CampaignObs wiring
/// and the adversarial-search metrics satellite.

namespace {

using namespace cvsafe;

constexpr std::size_t kEpisodes = 12;
constexpr std::uint64_t kSeed = 2026;

/// The campaign's hardened left-turn cell under the corruption fault —
/// the configuration the smoke campaign showed trips rejection-burst
/// dumps reliably.
sim::LeftTurnSimConfig hardened_config() {
  sim::LeftTurnSimConfig config = sim::LeftTurnSimConfig::paper_defaults();
  const sim::FaultCondition cond = sim::FaultCondition::preset("corruption");
  config.comm = cond.comm;
  config.faults = cond.plan;
  config.gate = filter::GateConfig::hardened();
  config.ladder = core::LadderConfig{};
  return config;
}

sim::AgentBlueprint hardened_blueprint(const sim::LeftTurnSimConfig& config) {
  sim::AgentBlueprint bp;
  bp.name = "expert-compound";
  bp.scenario = config.make_scenario();
  bp.sensor = config.sensor;
  bp.config = sim::AgentConfig::ultimate_compound();
  bp.config.use_expert_planner = true;
  bp.config.gate = config.gate;
  bp.config.ladder = config.ladder;
  return bp;
}

/// Runs the hardened cell on the fleet engine with recorders armed and
/// returns {dump JSONL, deterministic telemetry text}.
std::pair<std::string, std::string> run_armed(std::size_t threads,
                                              std::size_t pool,
                                              bool batched_sweeps) {
  const sim::LeftTurnSimConfig config = hardened_config();
  const sim::AgentBlueprint bp = hardened_blueprint(config);
  sim::FleetConfig fleet;
  fleet.threads = threads;
  fleet.pool_capacity = pool;
  fleet.batched_sweeps = batched_sweeps;
  fleet.policy = sim::SeedPolicy::kDerived;
  obs::FlightDumpCollector dumps;
  sim::FleetObsSinks sinks;
  sinks.dumps = &dumps;
  const std::vector<sim::FleetRecord> records =
      sim::run_left_turn_fleet_records(config, bp, kEpisodes, kSeed, fleet,
                                       sinks);
  std::ostringstream jsonl;
  obs::write_flight_dumps_jsonl(jsonl, dumps.take_sorted(), "left-turn",
                                "corruption");
  obs::MetricsRegistry reg;
  sim::collect_fleet_telemetry(reg,
                               std::span<const sim::FleetRecord>(records));
  return {jsonl.str(), reg.prometheus_text()};
}

TEST(FlightRecorderFleet, DumpsAreByteIdenticalAcrossEngineShapes) {
  const auto [baseline_jsonl, baseline_telemetry] =
      run_armed(/*threads=*/1, /*pool=*/8192, /*batched_sweeps=*/true);
  ASSERT_FALSE(baseline_jsonl.empty())
      << "the hardened corruption cell must trip at least one dump";
  EXPECT_NE(baseline_jsonl.find("\"flight\""), std::string::npos);
  EXPECT_NE(baseline_jsonl.find("rejection_burst"), std::string::npos);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                    std::size_t{7}}) {
    for (const std::size_t pool : {std::size_t{3}, std::size_t{64},
                                   std::size_t{8192}}) {
      for (const bool batched : {true, false}) {
        const auto [jsonl, telemetry] = run_armed(threads, pool, batched);
        EXPECT_EQ(jsonl, baseline_jsonl)
            << "threads=" << threads << " pool=" << pool
            << " batched=" << batched;
        EXPECT_EQ(telemetry, baseline_telemetry)
            << "threads=" << threads << " pool=" << pool
            << " batched=" << batched;
      }
    }
  }
}

TEST(FlightRecorderFleet, UntriggeredEpisodesProduceNoDump) {
  // Nominal channel, permissive gate: no rejections, no emergencies, and
  // eta stays far above the threshold — the collector must stay empty.
  sim::LeftTurnSimConfig config = sim::LeftTurnSimConfig::paper_defaults();
  const sim::AgentBlueprint bp = hardened_blueprint(config);
  obs::FlightDumpCollector dumps;
  sim::FleetObsSinks sinks;
  sinks.dumps = &dumps;
  sim::FleetConfig fleet;
  fleet.policy = sim::SeedPolicy::kDerived;
  sim::run_left_turn_fleet_records(config, bp, 4, kSeed, fleet, sinks);
  EXPECT_EQ(dumps.size(), 0u);
}

TEST(FlightRecorderFleet, CampaignCellThreadsSinksThrough) {
  const sim::FaultCondition cond = sim::FaultCondition::preset("corruption");
  std::string baseline;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                    std::size_t{7}}) {
    obs::FlightDumpCollector dumps;
    sim::FleetObsSinks sinks;
    sinks.dumps = &dumps;
    const std::vector<sim::RunResult> results = sim::run_campaign_cell(
        "left-turn", cond, kEpisodes, kSeed, threads, nullptr, sinks);
    ASSERT_EQ(results.size(), kEpisodes);
    EXPECT_GE(dumps.size(), 1u);
    std::ostringstream os;
    obs::write_flight_dumps_jsonl(os, dumps.take_sorted());
    if (baseline.empty()) {
      baseline = os.str();
    } else {
      EXPECT_EQ(os.str(), baseline) << "threads=" << threads;
    }
  }
}

TEST(FlightRecorderFleet, CampaignObsEmitsLabeledDumpsAndTelemetry) {
  sim::CampaignConfig config = sim::CampaignConfig::smoke();
  config.scenarios = {"left-turn"};
  config.faults = {"corruption"};
  config.episodes_per_cell = 8;
  std::ostringstream flights;
  obs::MetricsRegistry telemetry;
  sim::SweepSpanSink spans;
  sim::CampaignObs observe;
  observe.flight_os = &flights;
  observe.metrics = &telemetry;
  observe.spans = &spans;
  const sim::CampaignResult result =
      sim::run_fault_campaign(config, nullptr, &observe);
  EXPECT_TRUE(result.invariant_ok());

  // Dumps carry the cell labels and deterministic telemetry folded.
  EXPECT_NE(flights.str().find("\"scenario\":\"left-turn\""),
            std::string::npos);
  EXPECT_NE(flights.str().find("\"fault\":\"corruption\""),
            std::string::npos);
  EXPECT_EQ(telemetry.counters().at("cvsafe_fleet_episodes_total").value(),
            8u);
  EXPECT_TRUE(telemetry.histograms().count("cvsafe_fleet_eta"));

  // Spans measured some work (wall clock — only existence is asserted).
  const sim::SweepSpans total = spans.total();
  std::uint64_t steps = 0;
  for (const auto& span : total.spans) steps += span.count;
  EXPECT_GT(steps, 0u);

  // The same campaign with observability off is byte-identical on the
  // deterministic artifact (the CSV): observation never perturbs runs.
  const sim::CampaignResult plain = sim::run_fault_campaign(config);
  EXPECT_EQ(sim::campaign_csv(plain), sim::campaign_csv(result));
}

TEST(SearchMetrics, CollectSearchMetricsFoldsTrace) {
  adv::SearchConfig config = adv::SearchConfig::smoke();
  config.threads = 2;
  const adv::SearchResult result = adv::run_search(config);
  obs::MetricsRegistry reg;
  adv::collect_search_metrics(reg, result);

  const std::uint64_t candidates =
      reg.counters().at("cvsafe_attack_candidates_total").value();
  EXPECT_EQ(candidates, result.trace.candidates.size());
  const std::uint64_t screened =
      reg.counters().at("cvsafe_attack_stealth_rejected_total").value();
  std::uint64_t expect_screened = 0;
  for (const adv::CandidateRecord& c : result.trace.candidates) {
    expect_screened += c.admissible ? 0 : 1;
  }
  EXPECT_EQ(screened, expect_screened);
  EXPECT_EQ(reg.counters().at("cvsafe_attack_collisions_total").value(), 0u);

  if (const adv::CandidateRecord* worst = result.worst()) {
    EXPECT_DOUBLE_EQ(reg.gauges().at("cvsafe_attack_best_eta").value(),
                     worst->cell.min_eta);
    // The per-iteration running-best series ends at the global best.
    const std::string last_key =
        "cvsafe_attack_best_eta{iteration=\"" +
        std::to_string(result.trace.candidates.back().iteration) + "\"}";
    ASSERT_TRUE(reg.gauges().count(last_key));
    EXPECT_DOUBLE_EQ(reg.gauges().at(last_key).value(),
                     worst->cell.min_eta);
  }

  // Determinism: the fold reads only the trace, so two folds agree.
  obs::MetricsRegistry again;
  adv::collect_search_metrics(again, result);
  EXPECT_EQ(reg.prometheus_text(), again.prometheus_text());
}

TEST(SearchMetrics, OffenderFlightDumpsAreDeterministic) {
  adv::SearchConfig config = adv::SearchConfig::smoke();
  config.threads = 2;
  const adv::SearchResult result = adv::run_search(config);
  if (result.offenders.empty()) {
    GTEST_SKIP() << "stealth screen admitted no candidate";
  }
  std::ostringstream a, b;
  const std::size_t na = adv::dump_offender_flights(result, 0, a);
  const std::size_t nb = adv::dump_offender_flights(result, 0, b);
  EXPECT_EQ(na, nb);
  EXPECT_EQ(a.str(), b.str());
  if (na > 0) {
    EXPECT_NE(a.str().find("\"fault\":\"adv-0\""), std::string::npos);
  }
}

}  // namespace
