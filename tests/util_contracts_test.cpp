// The contracts layer itself: violation reporting in throw mode, message
// formatting, mode switching, and the contracts applied across the
// safety-critical chain (interval misuse, filter preconditions, planner
// wiring). Compile-out behaviour is covered separately by
// util_contracts_disabled_test.cpp, which builds with -DCVSAFE_NO_CONTRACTS.

#include "cvsafe/util/contracts.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>

#include "cvsafe/core/compound_planner.hpp"
#include "cvsafe/core/preimage.hpp"
#include "cvsafe/filter/kalman.hpp"
#include "cvsafe/filter/reachability.hpp"
#include "cvsafe/util/interval.hpp"
#include "cvsafe/util/interval_set.hpp"
#include "cvsafe/util/thread_pool.hpp"
#include "cvsafe/vehicle/dynamics.hpp"

namespace cvsafe::util {
namespace {

TEST(Contracts, ThrowModeRaisesContractViolation) {
  ScopedContractMode mode(ContractMode::kThrow);
  EXPECT_THROW(CVSAFE_EXPECTS(false, "must not hold"), ContractViolation);
  EXPECT_THROW(CVSAFE_ENSURES(1 + 1 == 3), ContractViolation);
  EXPECT_THROW(CVSAFE_ASSERT(false), ContractViolation);
}

TEST(Contracts, PassingChecksAreSilent) {
  ScopedContractMode mode(ContractMode::kThrow);
  EXPECT_NO_THROW(CVSAFE_EXPECTS(true));
  EXPECT_NO_THROW(CVSAFE_ENSURES(2 > 1, "arithmetic still works"));
  EXPECT_NO_THROW(CVSAFE_ASSERT(true, "fine"));
}

TEST(Contracts, MessageCarriesKindConditionAndLocation) {
  ScopedContractMode mode(ContractMode::kThrow);
  try {
    CVSAFE_EXPECTS(2 < 1, "two is not smaller");
    FAIL() << "contract did not fire";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos) << what;
    EXPECT_NE(what.find("2 < 1"), std::string::npos) << what;
    EXPECT_NE(what.find("util_contracts_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("two is not smaller"), std::string::npos) << what;
  }
}

TEST(Contracts, ScopedModeRestoresPrevious) {
  const ContractMode before = contract_mode();
  {
    ScopedContractMode mode(ContractMode::kThrow);
    EXPECT_EQ(contract_mode(), ContractMode::kThrow);
  }
  EXPECT_EQ(contract_mode(), before);
}

TEST(Contracts, ConditionEvaluatedExactlyOnce) {
  ScopedContractMode mode(ContractMode::kThrow);
  int evaluations = 0;
  CVSAFE_ASSERT(++evaluations > 0);
  EXPECT_EQ(evaluations, 1);
}

TEST(ContractsChain, IntervalMisuseFires) {
  ScopedContractMode mode(ContractMode::kThrow);
  EXPECT_THROW(Interval::centered(0.0, -1.0), ContractViolation);
  EXPECT_THROW(Interval::empty_interval().mid(), ContractViolation);
  EXPECT_THROW(Interval::empty_interval().clamp(0.0), ContractViolation);
  EXPECT_THROW(Interval::point(1.0).inflated(-0.5), ContractViolation);
  // NaN radii are not >= 0 either: NaN misuse is caught at the source.
  EXPECT_THROW(Interval::centered(0.0, std::nan("")), ContractViolation);
}

TEST(ContractsChain, IntervalSetMisuseFires) {
  ScopedContractMode mode(ContractMode::kThrow);
  const IntervalSet empty;
  EXPECT_THROW(empty.min(), ContractViolation);
  EXPECT_THROW(empty.max(), ContractViolation);
  EXPECT_THROW(empty[0], ContractViolation);
}

TEST(ContractsChain, KalmanPreconditionsFire) {
  ScopedContractMode mode(ContractMode::kThrow);
  filter::KalmanConfig bad_dt;
  bad_dt.dt = 0.0;
  EXPECT_THROW(filter::KalmanFilter{bad_dt}, ContractViolation);

  filter::KalmanConfig ok;
  filter::KalmanFilter fresh(ok);
  EXPECT_THROW(fresh.state_at(0.0), ContractViolation);

  filter::KalmanFilter filter(ok);
  filter.update(sensing::SensorReading{1.0, 0.0, 5.0, 0.0});
  // Time must not run backwards.
  EXPECT_THROW(filter.update(sensing::SensorReading{0.5, 0.0, 5.0, 0.0}),
               ContractViolation);
  // Rollback timestamps must be finite.
  EXPECT_THROW(filter.correct_with_message(
                   std::numeric_limits<double>::quiet_NaN(), 0.0, 5.0, 0.0),
               ContractViolation);
}

TEST(ContractsChain, ReachabilityPreconditionsFire) {
  ScopedContractMode mode(ContractMode::kThrow);
  const vehicle::VehicleLimits limits{0.0, 15.0, -6.0, 3.0};
  EXPECT_THROW(filter::StateBounds::from_measurement(0.0, 0.0, 5.0, -1.0, 0.5,
                                                     limits),
               ContractViolation);
  filter::StateBounds empty_bounds;
  empty_bounds.p = Interval::empty_interval();
  EXPECT_THROW(filter::propagate(empty_bounds, 1.0, limits),
               ContractViolation);
  const vehicle::VehicleLimits bad{10.0, 5.0, -6.0, 3.0};  // v_min > v_max
  const auto sound = filter::StateBounds::exact(0.0, 0.0, 5.0);
  EXPECT_THROW(filter::propagate(sound, 1.0, bad), ContractViolation);
}

TEST(ContractsChain, DynamicsAndPoolPreconditionsFire) {
  ScopedContractMode mode(ContractMode::kThrow);
  const vehicle::VehicleLimits limits{0.0, 15.0, -6.0, 3.0};
  const vehicle::DoubleIntegrator dyn(limits);
  EXPECT_THROW(dyn.step(vehicle::VehicleState{0.0, 5.0}, 1.0, 0.0),
               ContractViolation);

  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), ContractViolation);
  EXPECT_THROW(parallel_for(4, nullptr, 2), ContractViolation);
}

TEST(ContractsChain, PreimagePreconditionsFire) {
  ScopedContractMode mode(ContractMode::kThrow);
  EXPECT_THROW(core::sample_controls(1.0, -1.0, 5), ContractViolation);
  EXPECT_THROW(core::sample_controls(-1.0, 1.0, 1), ContractViolation);
  const core::PreimageGrid grid;
  EXPECT_THROW(
      core::compute_boundary_grid(grid, nullptr, nullptr, {0.0}),
      ContractViolation);
}

}  // namespace
}  // namespace cvsafe::util
