// Cross-module property suite, round 2 — the facts docs/THEORY.md leans
// on beyond the per-module tests.

#include <gtest/gtest.h>

#include <cmath>

#include "cvsafe/eval/experiments.hpp"
#include "cvsafe/filter/info_filter.hpp"
#include "cvsafe/planners/expert.hpp"
#include "cvsafe/planners/training.hpp"
#include "cvsafe/scenario/multi_vehicle.hpp"
#include "cvsafe/vehicle/accel_profile.hpp"
#include "cvsafe/vehicle/dynamics.hpp"
#include "cvsafe/vehicle/trajectory.hpp"

namespace cvsafe {
namespace {

const vehicle::VehicleLimits kEgo{0.0, 15.0, -6.0, 3.0};
const vehicle::VehicleLimits kC1{2.0, 15.0, -3.0, 3.0};

std::shared_ptr<const scenario::LeftTurnScenario> make_scenario() {
  return std::make_shared<const scenario::LeftTurnScenario>(
      scenario::LeftTurnGeometry{}, kEgo, kC1, 0.05);
}

// THEORY.md Lemma 2 (window monotonicity), unit level: along random
// episodes with noisy sensing and out-of-order delayed messages, the
// conservative window from the set-membership filter has a non-decreasing
// lower endpoint and non-increasing upper endpoint while non-empty.
TEST(Invariants, FilterWindowMonotonicity) {
  const auto scn = make_scenario();
  const auto sensor_cfg = sensing::SensorConfig::uniform(3.0, 0.1);
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    util::Rng rng(seed);
    vehicle::DoubleIntegrator dyn(kC1);
    vehicle::VehicleState s{rng.uniform(-60, -45), rng.uniform(5, 13)};
    const auto profile =
        vehicle::AccelProfile::random(240, 0.05, s.v, kC1, {}, rng);
    filter::InformationFilter est(kC1, sensor_cfg,
                                  filter::InfoFilterOptions::basic());
    sensing::Sensor sensor(sensor_cfg);
    comm::Channel channel(comm::CommConfig::delayed(0.6, 0.35, 0.1));

    bool have_prev = false;
    util::Interval prev;
    for (int step = 0; step < 240; ++step) {
      const double t = step * 0.05;
      const double a = profile.at(static_cast<std::size_t>(step));
      const vehicle::VehicleSnapshot snap{t, s, a};
      channel.offer(comm::Message{1, snap}, rng);
      for (const auto& m : channel.collect(t)) est.on_message(m);
      if (const auto r = sensor.sense(snap, rng)) est.on_sensor(*r);
      const auto e = est.estimate(t);
      if (e.valid) {
        const util::Interval w = scn->c1_window_conservative(e);
        if (w.empty()) break;  // vehicle certainly passed: terminal
        if (have_prev) {
          ASSERT_GE(w.lo, prev.lo - 1e-7) << "seed " << seed << " t=" << t;
          ASSERT_LE(w.hi, prev.hi + 1e-7) << "seed " << seed << " t=" << t;
        }
        prev = w;
        have_prev = true;
      }
      s = dyn.step(s, a, 0.05);
    }
    ASSERT_TRUE(have_prev);
  }
}

// Expert policy monotonicity: shifting the oncoming window later (same
// width) never makes the expert brake harder.
TEST(Invariants, ExpertMonotoneInWindowStart) {
  const auto scn = make_scenario();
  const planners::ExpertPolicy expert(scn,
                                      planners::ExpertParams::conservative());
  util::Rng rng(3);
  for (int trial = 0; trial < 2000; ++trial) {
    const double p0 = rng.uniform(-35, 4.5);
    const double v0 = rng.uniform(0, 15);
    const double width = rng.uniform(0.5, 6.0);
    const double lo1 = rng.uniform(0.0, 8.0);
    const double lo2 = lo1 + rng.uniform(0.1, 4.0);
    const double a1 =
        expert.act(0.0, p0, v0, util::Interval{lo1, lo1 + width});
    const double a2 =
        expert.act(0.0, p0, v0, util::Interval{lo2, lo2 + width});
    ASSERT_GE(a2, a1 - 1e-12)
        << "p0=" << p0 << " v0=" << v0 << " lo " << lo1 << "->" << lo2;
  }
}

// Multi-vehicle window union: along rollouts with three oncoming
// vehicles, the union of the per-vehicle conservative windows (from exact
// states) contains each vehicle's true occupancy interval.
TEST(Invariants, MultiVehicleWindowUnionIsSound) {
  const auto scn = make_scenario();
  const scenario::MultiVehicleLeftTurn math(scn);
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    util::Rng rng(seed);
    vehicle::DoubleIntegrator dyn(kC1);
    struct Car {
      vehicle::VehicleState s;
      vehicle::AccelProfile profile;
      vehicle::Trajectory traj;
    };
    std::vector<Car> cars;
    double u = rng.uniform(-55, -45);
    for (int k = 0; k < 3; ++k) {
      const double v0 = rng.uniform(5, 12);
      cars.push_back(Car{{u, v0},
                         vehicle::AccelProfile::random(400, 0.05, v0, kC1,
                                                       {}, rng),
                         {}});
      u -= rng.uniform(15, 30);
    }
    for (int step = 0; step < 400; ++step) {
      const double t = step * 0.05;
      for (auto& car : cars) {
        car.traj.push({t, car.s, car.profile.at(
                                     static_cast<std::size_t>(step))});
        car.s = dyn.step(car.s,
                         car.profile.at(static_cast<std::size_t>(step)),
                         0.05);
      }
    }

    // Check at a handful of pre-entry instants.
    for (int step = 0; step < 60; step += 20) {
      std::vector<filter::StateEstimate> ests;
      for (const auto& car : cars) {
        const auto& snap = car.traj[static_cast<std::size_t>(step)];
        filter::StateEstimate e;
        e.t = snap.t;
        e.p = util::Interval::point(snap.state.p);
        e.v = util::Interval::point(snap.state.v);
        e.p_hat = snap.state.p;
        e.v_hat = snap.state.v;
        e.a_hat = snap.a;
        e.valid = true;
        ests.push_back(e);
      }
      const util::IntervalSet tau = math.conservative_windows(ests);
      for (const auto& car : cars) {
        const double entry =
            car.traj.first_time_at_position(scn->geometry().c1_front);
        const double exit =
            car.traj.first_time_at_position(scn->geometry().c1_back);
        if (entry < 0.0 || exit < 0.0) continue;
        if (car.traj[static_cast<std::size_t>(step)].t >= entry) continue;
        // Midpoint of the true occupancy must be covered by the union.
        ASSERT_TRUE(tau.contains(0.5 * (entry + exit) ))
            << "seed " << seed << " step " << step;
      }
    }
  }
}

// Trained planners stay finite and within plausible output range over the
// whole encoded input space (robustness of the deployed network).
TEST(Invariants, NnPlannerOutputBounded) {
  const auto scn = make_scenario();
  planners::TrainingOptions options;
  options.num_samples = 3000;
  options.epochs = 12;
  options.seed = 4321;
  const auto net = planners::cached_planner_network(
      *scn, planners::PlannerStyle::kAggressive, options);
  const planners::InputEncoding enc;
  util::Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    const double p0 = rng.uniform(-40, 25);
    const double v0 = rng.uniform(0, 15);
    util::Interval tau1;
    if (rng.bernoulli(0.2)) {
      tau1 = util::Interval::empty_interval();
    } else {
      const double lo = rng.uniform(-1.0, 20.0);
      tau1 = util::Interval{lo, lo + rng.uniform(0.1, 10.0)};
    }
    const double a = net->predict(enc.encode(0.0, p0, v0, tau1))[0];
    ASSERT_TRUE(std::isfinite(a));
    // tanh hidden layers + trained targets in [-6, 3]: stays in a sane
    // band even off-distribution.
    ASSERT_GT(a, -30.0);
    ASSERT_LT(a, 30.0);
  }
}

// Trajectory interpolation stays within the bracketing samples.
TEST(Invariants, TrajectoryInterpolationBracketed) {
  util::Rng rng(9);
  vehicle::DoubleIntegrator dyn(kC1);
  vehicle::VehicleState s{0.0, 8.0};
  const auto profile = vehicle::AccelProfile::random(100, 0.1, s.v, kC1,
                                                     {}, rng);
  vehicle::Trajectory traj;
  for (int step = 0; step < 100; ++step) {
    traj.push({step * 0.1, s, profile.at(static_cast<std::size_t>(step))});
    s = dyn.step(s, profile.at(static_cast<std::size_t>(step)), 0.1);
  }
  for (int i = 0; i < 1000; ++i) {
    const double t = rng.uniform(0.0, 9.9);
    const auto state = traj.at(t);
    const auto lo = traj[static_cast<std::size_t>(t / 0.1)];
    const auto hi = traj[std::min<std::size_t>(
        static_cast<std::size_t>(t / 0.1) + 1, traj.size() - 1)];
    ASSERT_GE(state.p, std::min(lo.state.p, hi.state.p) - 1e-9);
    ASSERT_LE(state.p, std::max(lo.state.p, hi.state.p) + 1e-9);
  }
}

// The compound planner's emergency decisions coincide exactly with
// boundary-set membership of the monitor's world view (definition check
// through the full agent stack).
TEST(Invariants, EmergencyIffBoundary) {
  const eval::SimConfig config = eval::SimConfig::paper_defaults();
  eval::AgentBlueprint bp;
  bp.scenario = config.make_scenario();
  bp.sensor = config.sensor;
  bp.config = eval::AgentConfig::ultimate_compound();
  bp.config.use_expert_planner = true;
  bp.config.expert_params = planners::ExpertParams::aggressive();

  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    eval::SimTrace trace;
    (void)eval::run_left_turn_simulation(config, bp, seed, &trace);
    const auto scn = bp.scenario;
    // Recompute membership from the traced world is not recorded;
    // instead, consistency check: every switch-to-emergency step is
    // flagged in emergency_flags and vice versa at switch boundaries.
    for (const auto& sw : trace.switches) {
      ASSERT_LT(sw.step, trace.emergency_flags.size());
      ASSERT_EQ(trace.emergency_flags[sw.step], sw.to_emergency);
      if (sw.step > 0) {
        ASSERT_EQ(trace.emergency_flags[sw.step - 1], !sw.to_emergency);
      }
    }
    (void)scn;
  }
}

}  // namespace
}  // namespace cvsafe
