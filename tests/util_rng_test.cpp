#include "cvsafe/util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace cvsafe::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ConsecutiveSmallSeedsAreIndependent) {
  // SplitMix64 expansion must decorrelate seeds 0,1,2,... (batch runner
  // seeds simulations consecutively).
  Rng a(100), b(101);
  double corr = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    corr += (a.uniform01() - 0.5) * (b.uniform01() - 0.5);
  }
  corr /= n;
  EXPECT_LT(std::abs(corr), 0.01);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, Uniform01MeanAndVariance) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform01();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-2.5, 7.25);
    ASSERT_GE(x, -2.5);
    ASSERT_LT(x, 7.25);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 60000; ++i) {
    const auto v = rng.uniform_int(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 600);  // ~6 sigma
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(7, 7), 7);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.split();
  // The child stream must differ from the parent continuation.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ReseedResetsSequence) {
  Rng rng(31);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(rng.next_u64());
  rng.reseed(31);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(rng.next_u64(), first[i]);
}

}  // namespace
}  // namespace cvsafe::util
