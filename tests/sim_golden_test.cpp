// Golden-file pin of the closed-loop simulation streams.
//
// The golden CSV was generated from the legacy per-scenario drivers
// (src/eval/{simulation,lane_change_sim,intersection_sim,
// multi_simulation}.cpp) BEFORE they were ported onto sim::Engine, and is
// committed. Every number a batch or trace can produce — per-episode eta,
// per-step accelerations, emergency flags, NN-facing windows, aggregate
// statistics — is serialized at full precision (%.17g), so the port is
// byte-identical for fixed seeds iff this test passes. The same streams
// feed the fig5_*.csv / multi_vehicle.csv series of the bench binaries.
//
// Regenerate (only when a behavior change is intended) with:
//   CVSAFE_UPDATE_GOLDEN=1 ./sim_golden_test

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "cvsafe/eval/batch.hpp"
#include "cvsafe/eval/experiments.hpp"
#include "cvsafe/eval/intersection_sim.hpp"
#include "cvsafe/eval/lane_change_sim.hpp"
#include "cvsafe/eval/multi_simulation.hpp"
#include "cvsafe/eval/simulation.hpp"
#include "cvsafe/nn/mlp.hpp"

namespace {

using namespace cvsafe;

class GoldenRecorder {
 public:
  void emit(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    lines_.push_back(key + "," + buf);
  }
  void emit(const std::string& key, std::size_t value) {
    lines_.push_back(key + "," + std::to_string(value));
  }
  const std::vector<std::string>& lines() const { return lines_; }

 private:
  std::vector<std::string> lines_;
};

void emit_batch(GoldenRecorder& rec, const std::string& key,
                const eval::BatchStats& stats) {
  rec.emit(key + ".n", stats.n);
  rec.emit(key + ".safe_count", stats.safe_count);
  rec.emit(key + ".reached_count", stats.reached_count);
  rec.emit(key + ".total_steps", stats.total_steps);
  rec.emit(key + ".emergency_steps", stats.emergency_steps);
  rec.emit(key + ".mean_eta", stats.mean_eta);
  rec.emit(key + ".mean_reach_time", stats.mean_reach_time);
  for (std::size_t i = 0; i < stats.etas.size(); ++i) {
    rec.emit(key + ".eta" + std::to_string(i), stats.etas[i]);
  }
}

// LaneChange/Intersection/Multi batch stats share the aggregate fields.
template <typename Stats>
void emit_stats(GoldenRecorder& rec, const std::string& key,
                const Stats& stats) {
  rec.emit(key + ".n", stats.n);
  rec.emit(key + ".safe_count", stats.safe_count);
  rec.emit(key + ".reached_count", stats.reached_count);
  rec.emit(key + ".total_steps", stats.total_steps);
  rec.emit(key + ".emergency_steps", stats.emergency_steps);
  rec.emit(key + ".mean_eta", stats.mean_eta);
  rec.emit(key + ".mean_reach_time", stats.mean_reach_time);
}

// Per-episode fields shared by all four result families.
template <typename Result>
void emit_result(GoldenRecorder& rec, const std::string& key,
                 const Result& r) {
  rec.emit(key + ".eta", r.eta);
  rec.emit(key + ".reached", static_cast<std::size_t>(r.reached ? 1 : 0));
  rec.emit(key + ".reach_time", r.reach_time);
  rec.emit(key + ".steps", r.steps);
  rec.emit(key + ".emergency_steps", r.emergency_steps);
}

void record_left_turn(GoldenRecorder& rec) {
  const eval::SimConfig base = eval::SimConfig::paper_defaults();

  struct Variant {
    const char* name;
    eval::AgentConfig config;
  };
  const Variant variants[] = {
      {"pure", eval::AgentConfig::pure_nn()},
      {"basic", eval::AgentConfig::basic_compound()},
      {"ultimate", eval::AgentConfig::ultimate_compound()},
  };
  struct Comm {
    const char* name;
    comm::CommConfig comm;
    double sensor_delta;
  };
  const Comm comms[] = {
      {"clean", comm::CommConfig::no_disturbance(), 1.0},
      {"delayed", comm::CommConfig::delayed(0.3, 0.25), 1.0},
      {"lost", comm::CommConfig::messages_lost(), 2.0},
  };

  for (const auto& v : variants) {
    for (const auto& c : comms) {
      eval::SimConfig cfg = base;
      cfg.comm = c.comm;
      cfg.sensor = sensing::SensorConfig::uniform(c.sensor_delta);
      eval::AgentBlueprint bp;
      bp.name = v.name;
      bp.scenario = cfg.make_scenario();
      bp.sensor = cfg.sensor;
      bp.config = v.config;
      bp.config.use_expert_planner = true;
      const auto stats = eval::run_batch(cfg, bp, 6, /*base_seed=*/101,
                                         /*threads=*/2);
      emit_batch(rec,
                 std::string("left_turn.") + v.name + "." + c.name, stats);
    }
  }

  // Per-step trace of the ultimate expert agent under heavy delay.
  {
    eval::SimConfig cfg = base;
    cfg.comm = comm::CommConfig::delayed(0.5, 0.25);
    eval::AgentBlueprint bp;
    bp.name = "trace";
    bp.scenario = cfg.make_scenario();
    bp.sensor = cfg.sensor;
    bp.config = eval::AgentConfig::ultimate_compound();
    bp.config.use_expert_planner = true;
    for (const std::uint64_t seed : {7u, 11u}) {
      eval::SimTrace trace;
      const auto r =
          eval::run_left_turn_simulation(cfg, bp, seed, &trace);
      const std::string key =
          "left_turn.trace.seed" + std::to_string(seed);
      emit_result(rec, key, r);
      rec.emit(key + ".switches", trace.switches.size());
      for (std::size_t i = 0; i < trace.accel_commands.size(); ++i) {
        const std::string sk = key + ".s" + std::to_string(i);
        rec.emit(sk + ".a0", trace.accel_commands[i]);
        rec.emit(sk + ".ego_p", trace.ego[i].state.p);
        rec.emit(sk + ".c1_p", trace.c1[i].state.p);
        rec.emit(sk + ".em", static_cast<std::size_t>(
                                 trace.emergency_flags[i] ? 1 : 0));
        rec.emit(sk + ".tau_lo", trace.tau1_lo[i]);
        rec.emit(sk + ".tau_hi", trace.tau1_hi[i]);
      }
    }
  }

  // NN planner paths with a deterministic random (untrained) network —
  // exercises NnPlanner / EnsemblePlanner encoding without training cost.
  {
    util::Rng net_rng(42);
    const auto net = std::make_shared<const nn::Mlp>(
        nn::MlpSpec{{4, 16, 16, 1}}, net_rng);
    eval::SimConfig cfg = base;
    cfg.comm = comm::CommConfig::delayed(0.4, 0.25);
    for (const auto& v :
         {std::pair<const char*, eval::AgentConfig>{
              "pure", eval::AgentConfig::pure_nn()},
          {"ultimate", eval::AgentConfig::ultimate_compound()}}) {
      eval::AgentBlueprint bp;
      bp.name = v.first;
      bp.scenario = cfg.make_scenario();
      bp.net = net;
      bp.sensor = cfg.sensor;
      bp.config = v.second;
      const auto stats =
          eval::run_batch(cfg, bp, 4, /*base_seed=*/201, /*threads=*/2);
      emit_batch(rec, std::string("left_turn.nn.") + v.first, stats);
    }

    util::Rng rng2(43);
    const auto net2 = std::make_shared<const nn::Mlp>(
        nn::MlpSpec{{4, 16, 16, 1}}, rng2);
    eval::AgentBlueprint bp;
    bp.name = "ensemble";
    bp.scenario = cfg.make_scenario();
    bp.ensemble = {net, net2};
    bp.sensor = cfg.sensor;
    bp.config = eval::AgentConfig::ultimate_compound();
    bp.config.ensemble_sigma_penalty = 0.5;
    const auto stats =
        eval::run_batch(cfg, bp, 3, /*base_seed=*/211, /*threads=*/2);
    emit_batch(rec, "left_turn.nn.ensemble", stats);
  }
}

void record_lane_change(GoldenRecorder& rec) {
  eval::LaneChangeSimConfig cfg;
  struct Case {
    const char* name;
    eval::LaneChangePlannerConfig planner;
  };
  eval::LaneChangePlannerConfig raw;
  raw.use_compound = false;
  eval::LaneChangePlannerConfig basic;
  basic.use_info_filter = false;
  const Case cases[] = {{"raw", raw},
                        {"basic", basic},
                        {"ultimate", eval::LaneChangePlannerConfig{}}};
  for (const auto& c : cases) {
    const auto stats =
        eval::run_lane_change_batch(cfg, c.planner, 6, /*base_seed=*/301,
                                    /*threads=*/2);
    emit_stats(rec, std::string("lane_change.") + c.name, stats);
  }
  eval::LaneChangeSimConfig noisy = cfg;
  noisy.comm = comm::CommConfig::delayed(0.3, 0.25);
  for (const std::uint64_t seed : {303u, 304u, 305u}) {
    const auto r = eval::run_lane_change_simulation(
        noisy, eval::LaneChangePlannerConfig{}, seed);
    emit_result(rec, "lane_change.ep" + std::to_string(seed), r);
  }
}

void record_intersection(GoldenRecorder& rec) {
  eval::IntersectionSimConfig cfg;
  for (const bool use_compound : {false, true}) {
    const auto stats = eval::run_intersection_batch(
        cfg, use_compound, 4, /*base_seed=*/401, /*threads=*/2);
    emit_stats(rec,
               std::string("intersection.") +
                   (use_compound ? "compound" : "raw"),
               stats);
  }
  eval::IntersectionSimConfig noisy = cfg;
  noisy.comm = comm::CommConfig::delayed(0.4, 0.25);
  for (const std::uint64_t seed : {403u, 404u}) {
    const auto r = eval::run_intersection_simulation(noisy, true, seed);
    emit_result(rec, "intersection.ep" + std::to_string(seed), r);
  }
}

void record_multi(GoldenRecorder& rec) {
  const eval::SimConfig config = eval::SimConfig::paper_defaults();
  eval::MultiAgentSetup setup;
  setup.scenario = config.make_scenario();  // net == nullptr -> expert
  for (const std::size_t n_cars : {2u, 3u}) {
    eval::MultiVehicleConfig multi;
    multi.num_oncoming = n_cars;
    const auto stats = eval::run_multi_batch(config, multi, setup, 4,
                                             /*base_seed=*/501,
                                             /*threads=*/2);
    emit_stats(rec, "multi.n" + std::to_string(n_cars), stats);
  }
  eval::MultiAgentSetup naive = setup;
  naive.use_info_filter = false;
  naive.use_aggressive = false;
  eval::MultiVehicleConfig multi;
  eval::SimConfig noisy = config;
  noisy.comm = comm::CommConfig::delayed(0.3, 0.25);
  for (const std::uint64_t seed : {503u, 504u}) {
    const auto r =
        eval::run_multi_left_turn_simulation(noisy, multi, naive, seed);
    emit_result(rec, "multi.ep" + std::to_string(seed), r);
  }
}

std::vector<std::string> collect_lines() {
  GoldenRecorder rec;
  record_left_turn(rec);
  record_lane_change(rec);
  record_intersection(rec);
  record_multi(rec);
  return rec.lines();
}

TEST(SimGolden, ClosedLoopStreamsMatchCommittedGolden) {
  const std::string path = std::string(CVSAFE_GOLDEN_DIR) +
                           "/closed_loop.csv";
  const std::vector<std::string> lines = collect_lines();

  if (std::getenv("CVSAFE_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    for (const auto& line : lines) out << line << '\n';
    GTEST_SKIP() << "golden regenerated: " << path << " (" << lines.size()
                 << " lines)";
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " — regenerate with CVSAFE_UPDATE_GOLDEN=1";
  std::vector<std::string> golden;
  for (std::string line; std::getline(in, line);) golden.push_back(line);

  ASSERT_EQ(lines.size(), golden.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    ASSERT_EQ(lines[i], golden[i]) << "first divergence at line " << i + 1;
  }
}

}  // namespace
