#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "cvsafe/obs/metrics.hpp"
#include "cvsafe/sim/fault_campaign.hpp"
#include "cvsafe/sim/obs_summary.hpp"
#include "cvsafe/sim/run_result.hpp"

/// \file sim_obs_summary_test.cpp
/// The result -> metrics bridge and the CLI run-summary text: the
/// degradation-occupancy and message-tally lines the `run` command
/// prints, the per-episode metric fold, and the shard-merge determinism
/// that makes `--metrics` output thread-count independent.

namespace cvsafe {
namespace {

sim::RunResult synthetic_result() {
  sim::RunResult r;
  r.reached = true;
  r.reach_time = 12.5;
  r.eta = 0.4;
  r.steps = 250;
  r.emergency_steps = 30;
  r.ladder_steps = {100, 80, 50, 20};
  r.ladder_transitions = 6;
  r.messages_accepted = 180;
  r.messages_rejected = 15;
  return r;
}

// --- run_summary_text: the exact lines the CLI prints -----------------

TEST(RunSummaryText, LadderOccupancyAndMessageTallies) {
  EXPECT_EQ(sim::run_summary_text(synthetic_result()),
            "ladder     full 100 | reach-only 80 | sensor-only 50 | "
            "emergency-biased 20 (6 transitions)\n"
            "messages   180 accepted, 15 rejected\n");
}

TEST(RunSummaryText, EmptyWhenNoLadderAndNoTraffic) {
  EXPECT_EQ(sim::run_summary_text(sim::RunResult{}), "");
}

TEST(RunSummaryText, MessagesOnlyWhenLadderDisarmed) {
  sim::RunResult r;
  r.messages_accepted = 42;
  r.messages_rejected = 0;
  EXPECT_EQ(sim::run_summary_text(r), "messages   42 accepted, 0 rejected\n");
}

TEST(RunSummaryText, RejectionsAloneStillSurface) {
  sim::RunResult r;
  r.messages_rejected = 3;
  EXPECT_EQ(sim::run_summary_text(r), "messages   0 accepted, 3 rejected\n");
}

// --- collect_run_metrics ----------------------------------------------

TEST(CollectRunMetrics, FoldsOneEpisode) {
  obs::MetricsRegistry reg;
  sim::collect_run_metrics(reg, synthetic_result());
  EXPECT_EQ(reg.counters().at("cvsafe_episodes_total").value(), 1u);
  EXPECT_EQ(reg.counters().at("cvsafe_reached_total").value(), 1u);
  EXPECT_EQ(reg.counters().count("cvsafe_collisions_total"), 0u);
  EXPECT_EQ(reg.counters().at("cvsafe_steps_total").value(), 250u);
  EXPECT_EQ(reg.counters().at("cvsafe_emergency_steps_total").value(), 30u);
  EXPECT_EQ(reg.counters()
                .at("cvsafe_ladder_steps_total{level=\"full\"}")
                .value(),
            100u);
  EXPECT_EQ(reg.counters()
                .at("cvsafe_ladder_steps_total{level=\"emergency-biased\"}")
                .value(),
            20u);
  EXPECT_EQ(reg.counters().at("cvsafe_ladder_transitions_total").value(),
            6u);
  EXPECT_EQ(reg.counters().at("cvsafe_messages_accepted_total").value(),
            180u);
  EXPECT_EQ(reg.counters().at("cvsafe_messages_rejected_total").value(),
            15u);
  EXPECT_EQ(reg.histograms().at("cvsafe_eta").count(), 1u);
  EXPECT_EQ(reg.histograms().at("cvsafe_reach_time_seconds").count(), 1u);
  EXPECT_DOUBLE_EQ(reg.histograms().at("cvsafe_reach_time_seconds").sum(),
                   12.5);
}

TEST(CollectRunMetrics, ReachTimeOnlyObservedWhenReached) {
  obs::MetricsRegistry reg;
  sim::RunResult r;
  r.collided = true;
  r.eta = -0.2;
  r.steps = 10;
  sim::collect_run_metrics(reg, r);
  EXPECT_EQ(reg.counters().at("cvsafe_collisions_total").value(), 1u);
  EXPECT_EQ(reg.histograms().count("cvsafe_reach_time_seconds"), 0u);
  EXPECT_EQ(reg.histograms().at("cvsafe_eta").count(), 1u);
}

// --- shard merge determinism ------------------------------------------

TEST(CollectRunMetrics, ShardedFoldMatchesSequentialFold) {
  std::vector<sim::RunResult> results;
  for (int i = 0; i < 6; ++i) {
    sim::RunResult r = synthetic_result();
    // Dyadic etas: the histogram-sum comparison must not hinge on FP
    // addition order between the sequential and sharded folds.
    r.eta = 0.25 * i - 0.5;
    r.reached = i % 2 == 0;
    r.steps = 100 + static_cast<std::size_t>(i);
    results.push_back(r);
  }

  obs::MetricsRegistry sequential;
  sim::collect_metrics(sequential, results);

  // Two shards folded independently then merged, as a threaded run does.
  obs::MetricsRegistry shard_a;
  obs::MetricsRegistry shard_b;
  sim::collect_metrics(shard_a, std::span(results).subspan(0, 3));
  sim::collect_metrics(shard_b, std::span(results).subspan(3));
  shard_a.merge(shard_b);

  EXPECT_EQ(sequential.prometheus_text(), shard_a.prometheus_text());
  EXPECT_EQ(sequential.csv(), shard_a.csv());
}

// --- campaign fold ----------------------------------------------------

TEST(CollectCampaignMetrics, LabelsCellsByFaultAndScenario) {
  sim::CampaignResult campaign;
  sim::CampaignCell cell;
  cell.fault = "blackout";
  cell.scenario = "left-turn";
  cell.episodes = 8;
  cell.collisions = 0;
  cell.reached = 7;
  cell.steps = 2000;
  cell.messages_rejected = 12;
  cell.min_eta = 0.05;
  campaign.cells.push_back(cell);
  cell.fault = "corruption";
  cell.collisions = 1;
  campaign.cells.push_back(cell);

  obs::MetricsRegistry reg;
  sim::collect_campaign_metrics(reg, campaign);
  EXPECT_EQ(reg.counters().at("cvsafe_campaign_cells_total").value(), 2u);
  EXPECT_EQ(reg.counters().at("cvsafe_campaign_violations_total").value(),
            1u);
  const std::string labels =
      "{fault=\"blackout\",scenario=\"left-turn\"}";
  EXPECT_EQ(reg.counters().at("cvsafe_episodes_total" + labels).value(), 8u);
  EXPECT_EQ(
      reg.counters().at("cvsafe_messages_rejected_total" + labels).value(),
      12u);
  EXPECT_DOUBLE_EQ(reg.gauges().at("cvsafe_min_eta" + labels).value(), 0.05);
  const std::string text = reg.prometheus_text();
  // Labeled variants of one metric share a single TYPE line.
  EXPECT_EQ(text.find("# TYPE cvsafe_episodes_total counter"),
            text.rfind("# TYPE cvsafe_episodes_total counter"));
}

}  // namespace
}  // namespace cvsafe
