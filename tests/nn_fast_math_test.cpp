// Accuracy and special-value tests for the vectorizable fast_tanh used by
// the activation kernels. The bound asserted here (8 ulp) is deliberately
// looser than the observed maximum (~4 ulp) so a different FMA/rounding
// environment doesn't flake, while still catching any real defect — a
// wrong polynomial term or range-reduction bug shows up as thousands of
// ulp, not single digits.

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

#include "cvsafe/nn/fast_math.hpp"
#include "cvsafe/util/rng.hpp"

namespace {

using cvsafe::nn::fast_tanh;

std::int64_t ulp_diff(double a, double b) {
  if (a == b) return 0;  // cvsafe-lint: allow(float-compare)
  auto ia = std::bit_cast<std::int64_t>(a);
  auto ib = std::bit_cast<std::int64_t>(b);
  // Map to a monotonic integer line so the difference counts ulps across
  // the sign boundary too.
  if (ia < 0) ia = std::numeric_limits<std::int64_t>::min() - ia;
  if (ib < 0) ib = std::numeric_limits<std::int64_t>::min() - ib;
  return ia > ib ? ia - ib : ib - ia;
}

constexpr std::int64_t kMaxUlp = 8;

TEST(FastTanhTest, DenseSweepWithinUlpBound) {
  for (double x = -25.0; x <= 25.0; x += 1e-3) {
    ASSERT_LE(ulp_diff(fast_tanh(x), std::tanh(x)), kMaxUlp) << "x = " << x;
  }
}

TEST(FastTanhTest, RandomAndTinyInputsWithinUlpBound) {
  cvsafe::util::Rng rng(41);
  for (int i = 0; i < 200000; ++i) {
    const double x = rng.uniform(-40.0, 40.0);
    ASSERT_LE(ulp_diff(fast_tanh(x), std::tanh(x)), kMaxUlp) << "x = " << x;
  }
  for (double x = 1e-300; x < 1.0; x *= 1.31) {
    ASSERT_LE(ulp_diff(fast_tanh(x), std::tanh(x)), kMaxUlp) << "x = " << x;
    ASSERT_LE(ulp_diff(fast_tanh(-x), std::tanh(-x)), kMaxUlp) << "x = " << -x;
  }
}

TEST(FastTanhTest, SpecialValues) {
  EXPECT_TRUE(std::isnan(fast_tanh(std::nan(""))));
  EXPECT_EQ(fast_tanh(std::numeric_limits<double>::infinity()), 1.0);
  EXPECT_EQ(fast_tanh(-std::numeric_limits<double>::infinity()), -1.0);
  EXPECT_EQ(fast_tanh(0.0), 0.0);
  EXPECT_TRUE(std::signbit(fast_tanh(-0.0)));
  EXPECT_EQ(fast_tanh(25.0), 1.0);   // saturated
  EXPECT_EQ(fast_tanh(-25.0), -1.0);
  // Exact for subnormal-adjacent magnitudes where tanh(x) == x.
  EXPECT_EQ(fast_tanh(1e-300), 1e-300);
}

TEST(FastTanhTest, OddSymmetry) {
  cvsafe::util::Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(0.0, 30.0);
    EXPECT_EQ(fast_tanh(-x), -fast_tanh(x)) << "x = " << x;
  }
}

}  // namespace
