// Fleet engine equivalence: the pooled SoA engine (sim/fleet.hpp) must be
// byte-identical to the per-episode and lockstep paths — same stats, same
// seed-aligned eta order, same metrics text — for any worker count or
// pool capacity. This is the contract that lets run_setting and the fault
// campaign default to the fleet engine; the throughput path is only
// allowed to exist because this test holds.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "cvsafe/eval/batch.hpp"
#include "cvsafe/eval/experiments.hpp"
#include "cvsafe/nn/mlp.hpp"
#include "cvsafe/sim/fleet.hpp"
#include "cvsafe/sim/intersection.hpp"
#include "cvsafe/sim/lane_change.hpp"
#include "cvsafe/sim/left_turn.hpp"
#include "cvsafe/sim/multi_vehicle.hpp"
#include "cvsafe/sim/obs_summary.hpp"

namespace {

using namespace cvsafe;

void expect_stats_equal(const sim::BatchStats& a, const sim::BatchStats& b) {
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.safe_count, b.safe_count);
  EXPECT_EQ(a.reached_count, b.reached_count);
  EXPECT_EQ(a.total_steps, b.total_steps);
  EXPECT_EQ(a.emergency_steps, b.emergency_steps);
  EXPECT_EQ(a.mean_eta, b.mean_eta);                // exact
  EXPECT_EQ(a.mean_reach_time, b.mean_reach_time);  // exact
  ASSERT_EQ(a.etas.size(), b.etas.size());
  for (std::size_t i = 0; i < a.etas.size(); ++i) {
    EXPECT_EQ(a.etas[i], b.etas[i]) << "episode " << i;  // exact
  }
}

void expect_records_match_results(
    const std::vector<sim::FleetRecord>& records,
    const std::vector<sim::RunResult>& results) {
  ASSERT_EQ(records.size(), results.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const sim::RunResult r = sim::record_to_result(records[i]);
    EXPECT_EQ(r.collided, results[i].collided) << "episode " << i;
    EXPECT_EQ(r.reached, results[i].reached) << "episode " << i;
    EXPECT_EQ(r.reach_time, results[i].reach_time) << "episode " << i;
    EXPECT_EQ(r.eta, results[i].eta) << "episode " << i;
    EXPECT_EQ(r.steps, results[i].steps) << "episode " << i;
    EXPECT_EQ(r.emergency_steps, results[i].emergency_steps)
        << "episode " << i;
    EXPECT_EQ(r.ladder_steps, results[i].ladder_steps) << "episode " << i;
    EXPECT_EQ(r.ladder_transitions, results[i].ladder_transitions)
        << "episode " << i;
    EXPECT_EQ(r.messages_accepted, results[i].messages_accepted)
        << "episode " << i;
    EXPECT_EQ(r.messages_rejected, results[i].messages_rejected)
        << "episode " << i;
  }
}

sim::AgentBlueprint nn_blueprint(const sim::LeftTurnSimConfig& cfg,
                                 sim::AgentConfig agent) {
  util::Rng net_rng(42);
  sim::AgentBlueprint bp;
  bp.name = "nn";
  bp.scenario = cfg.make_scenario();
  bp.net = std::make_shared<const nn::Mlp>(nn::MlpSpec{{4, 16, 16, 1}},
                                           net_rng);
  bp.sensor = cfg.sensor;
  bp.config = agent;
  return bp;
}

TEST(SimFleet, MatchesPerEpisodeAcrossVariantsThreadsAndPools) {
  sim::LeftTurnSimConfig cfg = sim::LeftTurnSimConfig::paper_defaults();
  cfg.comm = comm::CommConfig::delayed(0.4, 0.25);

  for (const auto& agent : {sim::AgentConfig::pure_nn(),
                            sim::AgentConfig::basic_compound(),
                            sim::AgentConfig::ultimate_compound()}) {
    const auto bp = nn_blueprint(cfg, agent);
    const auto baseline = sim::run_left_turn_batch(
        cfg, bp, /*n=*/12, /*base_seed=*/601, /*threads=*/2,
        sim::BatchMode::kPerEpisode);
    for (const std::size_t threads : {1u, 4u, 7u}) {
      // Pool smaller than the batch forces compact/refill churn; pool
      // larger than the batch exercises the everything-resident path.
      for (const std::size_t pool : {3u, 12u, 64u}) {
        sim::FleetConfig fc;
        fc.pool_capacity = pool;
        fc.threads = threads;
        const auto fleet = sim::run_left_turn_fleet(cfg, bp, 12, 601, fc);
        expect_stats_equal(fleet.stats, baseline);
      }
    }
  }
}

TEST(SimFleet, MetricsFoldMatchesPerEpisodePath) {
  sim::LeftTurnSimConfig cfg = sim::LeftTurnSimConfig::paper_defaults();
  cfg.comm = comm::CommConfig::messages_lost();
  cfg.sensor = sensing::SensorConfig::uniform(2.0);
  const auto bp = nn_blueprint(cfg, sim::AgentConfig::ultimate_compound());
  const sim::LeftTurnAdapter adapter(cfg, bp);

  const auto results = sim::run_episodes(adapter, 9, 702, /*threads=*/2);
  obs::MetricsRegistry expected;
  sim::collect_metrics(expected, results);

  std::string text;
  for (const std::size_t threads : {1u, 4u, 7u}) {
    sim::FleetConfig fc;
    fc.threads = threads;
    const auto fleet = sim::run_left_turn_fleet(cfg, bp, 9, 702, fc);
    EXPECT_EQ(fleet.metrics.prometheus_text(), expected.prometheus_text())
        << "threads=" << threads;
    // Thread-count invariance of the full text, byte for byte.
    if (text.empty()) {
      text = fleet.metrics.prometheus_text();
    } else {
      EXPECT_EQ(fleet.metrics.prometheus_text(), text);
    }
  }
}

TEST(SimFleet, GenericScenariosMatchRunEpisodes) {
  // Non-left-turn adapters take the generic (per-episode planner) path of
  // the fleet worker; records must match run_episodes field for field
  // under the campaign's kDerived seed policy.
  sim::FleetConfig fc;
  fc.threads = 4;
  fc.policy = sim::SeedPolicy::kDerived;

  {
    sim::LaneChangeSimConfig cfg;
    cfg.comm = comm::CommConfig::delayed(0.3, 0.25);
    const sim::LaneChangeAdapter adapter(cfg, sim::LaneChangePlannerConfig{});
    const auto results = sim::run_episodes(adapter, 6, 811, 2,
                                           sim::SeedPolicy::kDerived);
    const auto records = sim::run_fleet_records(adapter, 6, 811, fc);
    expect_records_match_results(records, results);
  }
  {
    sim::IntersectionSimConfig cfg;
    cfg.comm = comm::CommConfig::delayed(0.3, 0.25);
    const sim::IntersectionAdapter adapter(cfg, /*use_compound=*/true);
    const auto results = sim::run_episodes(adapter, 6, 812, 2,
                                           sim::SeedPolicy::kDerived);
    const auto records = sim::run_fleet_records(adapter, 6, 812, fc);
    expect_records_match_results(records, results);
  }
  {
    sim::LeftTurnSimConfig cfg = sim::LeftTurnSimConfig::paper_defaults();
    cfg.comm = comm::CommConfig::delayed(0.3, 0.25);
    sim::MultiAgentSetup setup;
    setup.scenario = cfg.make_scenario();  // net == nullptr -> expert
    const sim::MultiVehicleAdapter adapter(cfg, sim::MultiVehicleConfig{},
                                           setup);
    const auto results = sim::run_episodes(adapter, 4, 813, 2,
                                           sim::SeedPolicy::kDerived);
    const auto records = sim::run_fleet_records(adapter, 4, 813, fc);
    expect_records_match_results(records, results);
  }
}

TEST(SimFleet, ExpertBlueprintUsesGenericPathBitExactly) {
  // A non-lockstep-eligible left-turn blueprint (expert planner) must run
  // the plan()-only path — monitor_gate must NOT be queried separately,
  // or the monitor would run twice per step and diverge.
  sim::LeftTurnSimConfig cfg = sim::LeftTurnSimConfig::paper_defaults();
  cfg.comm = comm::CommConfig::delayed(0.3, 0.25);
  sim::AgentBlueprint bp;
  bp.name = "expert";
  bp.scenario = cfg.make_scenario();
  bp.sensor = cfg.sensor;
  bp.config = sim::AgentConfig::ultimate_compound();
  bp.config.use_expert_planner = true;

  const auto per_episode = sim::run_left_turn_batch(
      cfg, bp, 8, 801, /*threads=*/2, sim::BatchMode::kPerEpisode);
  sim::FleetConfig fc;
  fc.threads = 3;
  const auto fleet = sim::run_left_turn_fleet(cfg, bp, 8, 801, fc);
  expect_stats_equal(fleet.stats, per_episode);
}

TEST(SimFleet, RunSettingEnginesAreByteIdentical) {
  // The table-cell runner must produce the same merged stats (and the
  // same eta order) on the fleet engine as on the lockstep engine.
  eval::SimConfig cfg = eval::SimConfig::paper_defaults();
  cfg.horizon = 20.0;
  const auto bp = nn_blueprint(cfg, sim::AgentConfig::ultimate_compound());

  const auto fleet =
      eval::run_setting(cfg, bp, eval::CommSetting::kDelayed, 20, 1, 2,
                        eval::BatchEngine::kFleet);
  const auto lockstep =
      eval::run_setting(cfg, bp, eval::CommSetting::kDelayed, 20, 1, 2,
                        eval::BatchEngine::kLockstep);
  expect_stats_equal(fleet, lockstep);
}

// --- Fold determinism (shard-merge invariance) ---------------------------

std::vector<sim::RunResult> synthetic_results() {
  // Dyadic eta / reach-time values keep every floating-point sum exact,
  // so shard partitioning cannot change any accumulated value and the
  // folds below can assert exact equality.
  std::vector<sim::RunResult> results;
  for (std::size_t i = 0; i < 24; ++i) {
    sim::RunResult r;
    r.eta = -1.0 + 0.125 * static_cast<double>(i % 17);
    r.collided = (i % 5) == 0;
    r.reached = !r.collided && (i % 3) != 0;
    r.reach_time = r.reached ? 4.0 + 0.25 * static_cast<double>(i) : 0.0;
    r.steps = 100 + i;
    r.emergency_steps = i % 7;
    r.ladder_steps[i % core::kNumDegradationLevels] = 10 + i;
    r.ladder_transitions = i % 4;
    r.messages_accepted = 50 + 2 * i;
    r.messages_rejected = i;
    results.push_back(r);
  }
  return results;
}

TEST(FoldDeterminism, BatchStatsMergeIsShardCountInvariant) {
  const auto results = synthetic_results();
  const auto whole = sim::BatchStats::from_results(results);

  for (const std::size_t shards : {1u, 4u, 7u}) {
    const std::size_t per = (results.size() + shards - 1) / shards;
    sim::BatchStats merged;
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t first = s * per;
      if (first >= results.size()) break;
      const std::size_t count = std::min(per, results.size() - first);
      merged.merge(sim::BatchStats::from_results(
          std::span<const sim::RunResult>(results).subspan(first, count)));
    }
    EXPECT_EQ(merged.n, whole.n) << "shards=" << shards;
    EXPECT_EQ(merged.safe_count, whole.safe_count);
    EXPECT_EQ(merged.reached_count, whole.reached_count);
    EXPECT_EQ(merged.total_steps, whole.total_steps);
    EXPECT_EQ(merged.emergency_steps, whole.emergency_steps);
    // Weighted-mean reassembly: deterministic for a given partition;
    // dyadic inputs still round through a division per shard, so allow
    // one-ulp-scale slack on the means only.
    EXPECT_NEAR(merged.mean_eta, whole.mean_eta, 1e-12);
    EXPECT_NEAR(merged.mean_reach_time, whole.mean_reach_time, 1e-12);
    // Seed-aligned eta order is exact: concatenation of ordered shards.
    ASSERT_EQ(merged.etas.size(), whole.etas.size());
    for (std::size_t i = 0; i < whole.etas.size(); ++i) {
      EXPECT_EQ(merged.etas[i], whole.etas[i]) << "episode " << i;
    }
  }
}

TEST(FoldDeterminism, MetricsRegistryMergeIsShardCountInvariant) {
  const auto results = synthetic_results();
  obs::MetricsRegistry whole;
  sim::collect_metrics(whole, results);
  const std::string expected = whole.prometheus_text();

  for (const std::size_t shards : {1u, 4u, 7u}) {
    const std::size_t per = (results.size() + shards - 1) / shards;
    obs::MetricsRegistry merged;
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t first = s * per;
      if (first >= results.size()) break;
      const std::size_t count = std::min(per, results.size() - first);
      obs::MetricsRegistry shard;
      sim::collect_metrics(
          shard,
          std::span<const sim::RunResult>(results).subspan(first, count));
      merged.merge(shard);
    }
    // Counters and histogram buckets are integers and the synthetic sums
    // are exact, so the full exposition text matches byte for byte.
    EXPECT_EQ(merged.prometheus_text(), expected) << "shards=" << shards;
  }
}

TEST(FoldDeterminism, StatsFromRecordsMirrorsFromResults) {
  const auto results = synthetic_results();
  std::vector<sim::FleetRecord> records;
  records.reserve(results.size());
  for (const auto& r : results) {
    records.push_back(sim::record_from_result(r));
  }
  const auto via_records = sim::stats_from_records(records);
  const auto via_results = sim::BatchStats::from_results(results);
  expect_stats_equal(via_records, via_results);

  obs::MetricsRegistry reg_records;
  sim::collect_record_metrics(reg_records, records);
  obs::MetricsRegistry reg_results;
  sim::collect_metrics(reg_results, results);
  EXPECT_EQ(reg_records.prometheus_text(), reg_results.prometheus_text());
}

}  // namespace
