// End-to-end efficiency claims of the paper (Eq. 1 left half and the
// trends of Tables I/II and Fig. 5), at reduced simulation counts:
//  * basic compound ~ pure NN for the conservative planner;
//  * ultimate compound faster than pure NN (conservative);
//  * ultimate >= basic for the aggressive planner;
//  * efficiency degrades as communication degrades.

#include <gtest/gtest.h>

#include "cvsafe/eval/batch.hpp"
#include "cvsafe/eval/experiments.hpp"

namespace cvsafe::eval {
namespace {

constexpr std::size_t kSims = 150;

BatchStats run_variant(const SimConfig& config,
                       planners::PlannerStyle style, PlannerVariant variant,
                       std::uint64_t base_seed = 1) {
  const auto bp = make_nn_blueprint(config, style, variant);
  return run_batch(config, bp, kSims, base_seed, 0);
}

TEST(ConservativeFamily, BasicMatchesPureNnEfficiency) {
  const SimConfig config = SimConfig::paper_defaults();
  const auto pure = run_variant(config, planners::PlannerStyle::kConservative,
                                PlannerVariant::kPureNn);
  const auto basic = run_variant(config,
                                 planners::PlannerStyle::kConservative,
                                 PlannerVariant::kBasic);
  ASSERT_GT(pure.reached_count, kSims * 9 / 10);
  // Table I: basic reaching time within a hair of pure NN.
  EXPECT_NEAR(basic.mean_reach_time, pure.mean_reach_time,
              0.15 * pure.mean_reach_time);
  EXPECT_EQ(basic.safe_count, basic.n);
}

TEST(ConservativeFamily, UltimateIsFasterThanPureNn) {
  const SimConfig config = SimConfig::paper_defaults();
  const auto pure = run_variant(config, planners::PlannerStyle::kConservative,
                                PlannerVariant::kPureNn);
  const auto ult = run_variant(config, planners::PlannerStyle::kConservative,
                               PlannerVariant::kUltimate);
  EXPECT_LT(ult.mean_reach_time, pure.mean_reach_time);
  EXPECT_GT(ult.mean_eta, pure.mean_eta);
  EXPECT_EQ(ult.safe_count, ult.n);
  // Winning percentage (one-control-step tie tolerance): ultimate wins
  // the vast majority of paired runs.
  EXPECT_GT(winning_fraction(ult.etas, pure.etas, 1e-3), 0.7);
}

TEST(AggressiveFamily, PureIsFastButUnsafe) {
  SimConfig config = SimConfig::paper_defaults();
  config.comm = comm::CommConfig::delayed(0.5, 0.25);
  const auto pure = run_variant(config, planners::PlannerStyle::kAggressive,
                                PlannerVariant::kPureNn);
  const auto ult = run_variant(config, planners::PlannerStyle::kAggressive,
                               PlannerVariant::kUltimate);
  // Table II shape: pure NN collides in a sizable share of episodes...
  EXPECT_LT(pure.safe_count, pure.n);
  // ...while the compound planner is 100% safe and wins on eta.
  EXPECT_EQ(ult.safe_count, ult.n);
  EXPECT_GT(ult.mean_eta, pure.mean_eta);
}

TEST(AggressiveFamily, UltimateAtLeastAsGoodAsBasic) {
  const SimConfig config = SimConfig::paper_defaults();
  const auto basic = run_variant(config, planners::PlannerStyle::kAggressive,
                                 PlannerVariant::kBasic);
  const auto ult = run_variant(config, planners::PlannerStyle::kAggressive,
                               PlannerVariant::kUltimate);
  EXPECT_EQ(basic.safe_count, basic.n);
  EXPECT_EQ(ult.safe_count, ult.n);
  // Table II: ultimate slightly faster (tolerate noise at this scale).
  EXPECT_LE(ult.mean_reach_time, basic.mean_reach_time * 1.05);
}

TEST(DisturbanceTrend, EfficiencyDegradesWithSensorNoise) {
  SimConfig base = SimConfig::paper_defaults();
  const auto clean =
      run_variant(apply_setting(base, CommSetting::kLost, 1.0),
                  planners::PlannerStyle::kConservative,
                  PlannerVariant::kUltimate);
  const auto noisy =
      run_variant(apply_setting(base, CommSetting::kLost, 4.8),
                  planners::PlannerStyle::kConservative,
                  PlannerVariant::kUltimate);
  // Fig. 5e: more noise, slower.
  EXPECT_GT(noisy.mean_reach_time, clean.mean_reach_time);
  // Fig. 5f: more noise, more emergency interventions.
  EXPECT_GE(noisy.emergency_frequency(), clean.emergency_frequency());
}

TEST(DisturbanceTrend, MessagesHelpOverSensorOnly) {
  SimConfig base = SimConfig::paper_defaults();
  base.sensor = sensing::SensorConfig::uniform(3.0);
  SimConfig with_msgs = base;
  with_msgs.comm = comm::CommConfig::no_disturbance();
  SimConfig without = base;
  without.comm = comm::CommConfig::messages_lost();
  const auto a = run_variant(with_msgs,
                             planners::PlannerStyle::kConservative,
                             PlannerVariant::kUltimate);
  const auto b = run_variant(without, planners::PlannerStyle::kConservative,
                             PlannerVariant::kUltimate);
  EXPECT_LT(a.mean_reach_time, b.mean_reach_time);
}

}  // namespace
}  // namespace cvsafe::eval
