// The adversarial search optimizers: both must minimize simple smooth
// objectives inside the unit box and replay bit-exactly from their
// (seed, iteration) schedule — the property the golden attack CSV and
// the CI determinism job lean on.

#include "cvsafe/adv/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cvsafe/util/contracts.hpp"

namespace cvsafe::adv {
namespace {

using util::ContractMode;
using util::ContractViolation;
using util::ScopedContractMode;

/// Shifted sphere: minimum 0 at x = center.
double sphere(std::span<const double> x, double center) {
  double s = 0.0;
  for (const double v : x) s += (v - center) * (v - center);
  return s;
}

/// Runs `iterations` ask/eval/tell rounds and returns the best score.
double drive(Optimizer& opt, std::size_t iterations, double center) {
  const std::size_t dim = opt.dim();
  const std::size_t pop = opt.population();
  std::vector<double> xs(pop * dim);
  std::vector<double> scores(pop);
  for (std::size_t it = 0; it < iterations; ++it) {
    opt.ask(it, xs);
    for (std::size_t c = 0; c < pop; ++c) {
      scores[c] = sphere({&xs[c * dim], dim}, center);
    }
    opt.tell(it, xs, scores);
  }
  return opt.best_score();
}

TEST(CoordinateDescent, MinimizesASphereFromTheBoxCenter) {
  CoordinateDescent opt(6);
  const double best = drive(opt, 120, 0.3);
  EXPECT_LT(best, 1e-3);
  for (const double v : opt.best()) EXPECT_NEAR(v, 0.3, 0.05);
}

TEST(CoordinateDescent, EmitsCandidatesInsideTheUnitBox) {
  CoordinateDescent opt(4, 0.5);
  std::vector<double> xs(2 * 4);
  opt.ask(0, xs);
  for (const double v : xs) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(CoordinateDescent, IsBitReproducible) {
  CoordinateDescent a(5);
  CoordinateDescent b(5);
  std::vector<double> xa(2 * 5), xb(2 * 5), scores(2);
  for (std::size_t it = 0; it < 25; ++it) {
    a.ask(it, xa);
    b.ask(it, xb);
    ASSERT_EQ(xa, xb) << "iteration " << it;
    for (std::size_t c = 0; c < 2; ++c) {
      scores[c] = sphere({&xa[c * 5], 5}, 0.7);
    }
    a.tell(it, xa, scores);
    b.tell(it, xb, scores);
  }
  EXPECT_EQ(a.best_score(), b.best_score());
}

TEST(CmaEs, MinimizesASphere) {
  CmaEs opt(5, /*seed=*/42, /*lambda=*/8);
  const double best = drive(opt, 60, 0.7);
  EXPECT_LT(best, 1e-2);
  for (const double v : opt.best()) EXPECT_NEAR(v, 0.7, 0.1);
}

TEST(CmaEs, EmitsCandidatesInsideTheUnitBox) {
  CmaEs opt(8, 1, 8, /*sigma0=*/0.5);
  std::vector<double> xs(8 * 8);
  opt.ask(0, xs);
  for (const double v : xs) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(CmaEs, IsBitReproducibleFromSeedAndSchedule) {
  CmaEs a(6, 99);
  CmaEs b(6, 99);
  const std::size_t pop = a.population();
  std::vector<double> xa(pop * 6), xb(pop * 6), scores(pop);
  for (std::size_t it = 0; it < 20; ++it) {
    a.ask(it, xa);
    b.ask(it, xb);
    ASSERT_EQ(xa, xb) << "iteration " << it;
    for (std::size_t c = 0; c < pop; ++c) {
      scores[c] = sphere({&xa[c * 6], 6}, 0.2);
    }
    a.tell(it, xa, scores);
    b.tell(it, xb, scores);
  }
  EXPECT_EQ(a.best_score(), b.best_score());
  EXPECT_EQ(a.sigma(), b.sigma());
}

TEST(CmaEs, DifferentSeedsProduceDifferentDraws) {
  CmaEs a(6, 1);
  CmaEs b(6, 2);
  std::vector<double> xa(a.population() * 6), xb(b.population() * 6);
  a.ask(0, xa);
  b.ask(0, xb);
  EXPECT_NE(xa, xb);
}

TEST(CmaEs, AdaptsSigmaAwayFromItsInitialValue) {
  CmaEs opt(4, 3);
  drive(opt, 40, 0.5);
  EXPECT_NE(opt.sigma(), 0.25);  // CSA moved the step size
  EXPECT_GT(opt.sigma(), 0.0);
}

TEST(CmaEs, EnforcesAskTellOrdering) {
  ScopedContractMode mode(ContractMode::kThrow);
  CmaEs opt(3, 1);
  std::vector<double> xs(opt.population() * 3), scores(opt.population());
  EXPECT_THROW(opt.ask(1, xs), ContractViolation);  // must start at 0
  opt.ask(0, xs);
  EXPECT_THROW(opt.tell(1, xs, scores), ContractViolation);
  opt.tell(0, xs, scores);
  EXPECT_THROW(opt.ask(0, xs), ContractViolation);  // no re-ask
}

TEST(CmaEs, RejectsBadShapes) {
  ScopedContractMode mode(ContractMode::kThrow);
  EXPECT_THROW(CmaEs(0, 1), ContractViolation);
  EXPECT_THROW(CmaEs(3, 1, /*lambda=*/3), ContractViolation);  // odd
  EXPECT_THROW(CmaEs(3, 1, 8, /*sigma0=*/0.0), ContractViolation);
  CmaEs opt(3, 1);
  std::vector<double> wrong(5);
  EXPECT_THROW(opt.ask(0, wrong), ContractViolation);
}

TEST(MakeOptimizer, ResolvesNamesAndRejectsUnknown) {
  ScopedContractMode mode(ContractMode::kThrow);
  EXPECT_EQ(make_optimizer("coord", 4, 1)->name(), "coord");
  EXPECT_EQ(make_optimizer("cma", 4, 1)->name(), "cma");
  EXPECT_THROW(make_optimizer("anneal", 4, 1), ContractViolation);
}

}  // namespace
}  // namespace cvsafe::adv
