// Normalizer, metrics, learning-rate schedules, early stopping, and the
// ensemble planner.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "cvsafe/nn/metrics.hpp"
#include "cvsafe/nn/normalizer.hpp"
#include "cvsafe/nn/optimizer.hpp"
#include "cvsafe/nn/schedule.hpp"
#include "cvsafe/nn/trainer.hpp"
#include "cvsafe/planners/ensemble.hpp"

namespace cvsafe::nn {
namespace {

TEST(Standardizer, FitTransformsToZeroMeanUnitStd) {
  util::Rng rng(1);
  Matrix data(500, 3);
  for (std::size_t i = 0; i < data.rows(); ++i) {
    data(i, 0) = rng.normal(10.0, 4.0);
    data(i, 1) = rng.normal(-2.0, 0.5);
    data(i, 2) = 7.0;  // constant column
  }
  const Standardizer s = Standardizer::fit(data);
  const Matrix z = s.transform(data);
  for (std::size_t j = 0; j < 3; ++j) {
    double mean = 0.0;
    for (std::size_t i = 0; i < z.rows(); ++i) mean += z(i, j);
    mean /= static_cast<double>(z.rows());
    EXPECT_NEAR(mean, 0.0, 1e-9) << "column " << j;
  }
  // Constant column passes through with std 1.
  EXPECT_EQ(s.stddev()[2], 1.0);
  EXPECT_EQ(z(0, 2), 0.0);
}

TEST(Standardizer, InverseRoundTrip) {
  util::Rng rng(2);
  Matrix data(100, 2);
  for (auto& x : data.data()) x = rng.uniform(-20, 20);
  const Standardizer s = Standardizer::fit(data);
  const Matrix back = s.inverse(s.transform(data));
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(back.data()[i], data.data()[i], 1e-9);
  }
}

TEST(Standardizer, TransformRowMatchesMatrix) {
  util::Rng rng(3);
  Matrix data(50, 2);
  for (auto& x : data.data()) x = rng.uniform(-5, 5);
  const Standardizer s = Standardizer::fit(data);
  const auto row = s.transform_row({data(7, 0), data(7, 1)});
  const Matrix z = s.transform(data);
  EXPECT_NEAR(row[0], z(7, 0), 1e-12);
  EXPECT_NEAR(row[1], z(7, 1), 1e-12);
}

TEST(Standardizer, SerializationRoundTrip) {
  util::Rng rng(4);
  Matrix data(40, 3);
  for (auto& x : data.data()) x = rng.uniform(-5, 5);
  const Standardizer s = Standardizer::fit(data);
  std::stringstream ss;
  s.save(ss);
  const Standardizer loaded = Standardizer::load(ss);
  ASSERT_EQ(loaded.columns(), s.columns());
  for (std::size_t j = 0; j < s.columns(); ++j) {
    EXPECT_EQ(loaded.mean()[j], s.mean()[j]);
    EXPECT_EQ(loaded.stddev()[j], s.stddev()[j]);
  }
  std::stringstream bad("garbage");
  EXPECT_THROW(Standardizer::load(bad), std::runtime_error);
}

TEST(Standardizer, IdentityPassesThrough) {
  const Standardizer s = Standardizer::identity(3);
  const Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix z = s.transform(m);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(z.data()[i], m.data()[i]);
  }
}

TEST(Metrics, KnownValues) {
  const Matrix pred(1, 4, {1.0, 2.0, 3.0, 4.0});
  const Matrix target(1, 4, {1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(mean_absolute_error(pred, target), 0.0);
  EXPECT_EQ(r_squared(pred, target), 1.0);
  EXPECT_EQ(max_absolute_error(pred, target), 0.0);

  const Matrix off(1, 4, {2.0, 3.0, 4.0, 8.0});
  EXPECT_NEAR(mean_absolute_error(off, target), (1 + 1 + 1 + 4) / 4.0,
              1e-12);
  EXPECT_EQ(max_absolute_error(off, target), 4.0);
  EXPECT_LT(r_squared(off, target), 1.0);
}

TEST(Metrics, RSquaredMeanPredictorIsZero) {
  const Matrix target(1, 4, {1.0, 2.0, 3.0, 4.0});
  const Matrix mean_pred(1, 4, {2.5, 2.5, 2.5, 2.5});
  EXPECT_NEAR(r_squared(mean_pred, target), 0.0, 1e-12);
}

TEST(Schedules, Shapes) {
  const auto c = schedules::constant(0.1);
  EXPECT_EQ(c(0), 0.1);
  EXPECT_EQ(c(100), 0.1);

  const auto sd = schedules::step_decay(1.0, 0.5, 10);
  EXPECT_EQ(sd(0), 1.0);
  EXPECT_EQ(sd(9), 1.0);
  EXPECT_EQ(sd(10), 0.5);
  EXPECT_EQ(sd(25), 0.25);

  const auto cos = schedules::cosine(1.0, 100, 0.1);
  EXPECT_NEAR(cos(0), 1.0, 1e-12);
  EXPECT_NEAR(cos(50), 0.55, 1e-12);
  EXPECT_NEAR(cos(100), 0.1, 1e-12);
  EXPECT_NEAR(cos(200), 0.1, 1e-12);
  // Monotone non-increasing.
  for (std::size_t e = 1; e <= 100; ++e) {
    EXPECT_LE(cos(e), cos(e - 1) + 1e-12);
  }
}

Dataset toy_data(std::size_t n, util::Rng& rng) {
  Dataset d{Matrix(n, 1), Matrix(n, 1)};
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(-1, 1);
    d.inputs(i, 0) = x;
    d.targets(i, 0) = std::sin(3.0 * x);
  }
  return d;
}

TEST(Trainer, LrScheduleIsApplied) {
  util::Rng rng(5);
  const Dataset data = toy_data(200, rng);
  Mlp net(MlpSpec{{1, 8, 1}, Activation::kTanh, Activation::kIdentity},
          rng);
  Adam opt(1.0);  // will be overridden by the schedule
  TrainConfig config;
  config.epochs = 3;
  config.lr_schedule = schedules::constant(1e-3);
  train(net, data, opt, config, rng);
  EXPECT_EQ(opt.learning_rate(), 1e-3);
}

TEST(Trainer, EarlyStoppingStopsAndRestoresBest) {
  util::Rng rng(6);
  const Dataset all = toy_data(600, rng);
  const auto [train_set, val_set] = all.split(0.3);
  Mlp net(MlpSpec{{1, 16, 1}, Activation::kTanh, Activation::kIdentity},
          rng);
  // Aggressive LR so validation loss fluctuates and patience can fire.
  Adam opt(5e-2);
  TrainConfig config;
  config.epochs = 200;
  config.batch_size = 32;
  config.validation = &val_set;
  config.patience = 5;
  const TrainResult result = train(net, train_set, opt, config, rng);
  ASSERT_FALSE(result.val_losses.empty());
  if (result.stopped_early) {
    EXPECT_LT(result.val_losses.size(), 200u);
  }
  // The restored network achieves the recorded best validation loss.
  const double best_recorded = result.val_losses[result.best_epoch];
  EXPECT_NEAR(evaluate(net, val_set), best_recorded, 1e-9);
}

}  // namespace
}  // namespace cvsafe::nn

namespace cvsafe::planners {
namespace {

const vehicle::VehicleLimits kEgo{0.0, 15.0, -6.0, 3.0};
const vehicle::VehicleLimits kC1{2.0, 15.0, -3.0, 3.0};

std::shared_ptr<const scenario::LeftTurnScenario> make_scenario() {
  return std::make_shared<const scenario::LeftTurnScenario>(
      scenario::LeftTurnGeometry{}, kEgo, kC1, 0.05);
}

TrainingOptions small_options(std::uint64_t seed) {
  TrainingOptions o;
  o.num_samples = 2000;
  o.epochs = 10;
  o.seed = seed;
  return o;
}

TEST(Ensemble, MembersDifferAndMeanIsBetween) {
  const auto scn = make_scenario();
  const auto members = train_planner_ensemble(
      *scn, PlannerStyle::kConservative, 3, small_options(9000));
  ASSERT_EQ(members.size(), 3u);
  EXPECT_NE(members[0].get(), members[1].get());

  EnsemblePlanner planner(members, InputEncoding{}, "ensemble");
  scenario::LeftTurnWorld world;
  world.t = 0.0;
  world.ego = {-20.0, 8.0};
  world.tau1_nn = util::Interval{4.0, 8.0};
  const double mean = planner.plan(world);

  const auto x = InputEncoding{}.encode(0.0, -20.0, 8.0, world.tau1_nn);
  double lo = 1e9, hi = -1e9;
  for (const auto& m : members) {
    const double y = m->predict(x)[0];
    lo = std::min(lo, y);
    hi = std::max(hi, y);
  }
  EXPECT_GE(mean, lo - 1e-9);
  EXPECT_LE(mean, hi + 1e-9);
  EXPECT_GE(planner.last_disagreement(), 0.0);
}

TEST(Ensemble, SigmaPenaltyIsConservative) {
  const auto scn = make_scenario();
  const auto members = train_planner_ensemble(
      *scn, PlannerStyle::kConservative, 3, small_options(9001));
  EnsemblePlanner plain(members, InputEncoding{}, "plain", 0.0);
  EnsemblePlanner averse(members, InputEncoding{}, "averse", 2.0);

  scenario::LeftTurnWorld world;
  world.t = 0.0;
  world.ego = {-20.0, 8.0};
  world.tau1_nn = util::Interval{4.0, 8.0};
  EXPECT_LE(averse.plan(world), plain.plan(world));
}

TEST(Ensemble, DisagreementHigherOffDistribution) {
  const auto scn = make_scenario();
  const auto members = train_planner_ensemble(
      *scn, PlannerStyle::kConservative, 4, small_options(9002));
  EnsemblePlanner planner(members, InputEncoding{}, "ensemble");

  // In-distribution state.
  scenario::LeftTurnWorld in;
  in.t = 0.0;
  in.ego = {-20.0, 8.0};
  in.tau1_nn = util::Interval{4.0, 8.0};
  planner.plan(in);
  const double d_in = planner.last_disagreement();

  // Absurd off-distribution state (far outside the sampled ranges).
  scenario::LeftTurnWorld out;
  out.t = 0.0;
  out.ego = {-200.0, 14.9};
  out.tau1_nn = util::Interval{28.0, 29.0};
  planner.plan(out);
  const double d_out = planner.last_disagreement();
  EXPECT_GT(d_out, d_in);
}

}  // namespace
}  // namespace cvsafe::planners
