#include "cvsafe/util/linalg.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "cvsafe/util/rng.hpp"

namespace cvsafe::util {
namespace {

Mat2 random_mat(Rng& rng) {
  return Mat2{rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-5, 5),
              rng.uniform(-5, 5)};
}

void expect_mat_near(const Mat2& a, const Mat2& b, double tol = 1e-12) {
  EXPECT_NEAR(a.a, b.a, tol);
  EXPECT_NEAR(a.b, b.b, tol);
  EXPECT_NEAR(a.c, b.c, tol);
  EXPECT_NEAR(a.d, b.d, tol);
}

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ((a + b).x, 4.0);
  EXPECT_EQ((a + b).y, 1.0);
  EXPECT_EQ((a - b).x, -2.0);
  EXPECT_EQ((a * 2.0).y, 4.0);
  EXPECT_EQ(a.dot(b), 1.0);
}

TEST(Mat2, IdentityAndDiagonal) {
  const Mat2 i = Mat2::identity();
  EXPECT_EQ(i.a, 1.0);
  EXPECT_EQ(i.d, 1.0);
  EXPECT_EQ(i.b, 0.0);
  const Mat2 d = Mat2::diagonal(2.0, 3.0);
  EXPECT_EQ(d.determinant(), 6.0);
  EXPECT_EQ(d.trace(), 5.0);
}

TEST(Mat2, MatrixVectorProduct) {
  const Mat2 m{1.0, 2.0, 3.0, 4.0};
  const Vec2 v{5.0, 6.0};
  const Vec2 r = m * v;
  EXPECT_EQ(r.x, 17.0);
  EXPECT_EQ(r.y, 39.0);
}

TEST(Mat2, MatrixProduct) {
  const Mat2 a{1.0, 2.0, 3.0, 4.0};
  const Mat2 b{5.0, 6.0, 7.0, 8.0};
  const Mat2 r = a * b;
  expect_mat_near(r, Mat2{19.0, 22.0, 43.0, 50.0});
}

TEST(Mat2, TransposeInvolution) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const Mat2 m = random_mat(rng);
    expect_mat_near(m.transpose().transpose(), m);
  }
}

TEST(Mat2, InverseRoundTrip) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    Mat2 m = random_mat(rng);
    if (std::abs(m.determinant()) < 1e-3) continue;
    expect_mat_near(m * m.inverse(), Mat2::identity(), 1e-9);
    expect_mat_near(m.inverse() * m, Mat2::identity(), 1e-9);
  }
}

TEST(Mat2, DeterminantOfProduct) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const Mat2 a = random_mat(rng);
    const Mat2 b = random_mat(rng);
    EXPECT_NEAR((a * b).determinant(), a.determinant() * b.determinant(),
                1e-8);
  }
}

TEST(Mat2, SymmetryCheck) {
  EXPECT_TRUE((Mat2{1.0, 2.0, 2.0, 3.0}).is_symmetric());
  EXPECT_FALSE((Mat2{1.0, 2.0, 2.1, 3.0}).is_symmetric());
}

TEST(Mat2, PositiveSemidefinite) {
  EXPECT_TRUE(Mat2::diagonal(1.0, 2.0).is_positive_semidefinite());
  EXPECT_TRUE(Mat2::zero().is_positive_semidefinite());
  EXPECT_FALSE(Mat2::diagonal(-1.0, 2.0).is_positive_semidefinite());
  // Covariance-like matrix: A A^T is PSD for any A.
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const Mat2 a = random_mat(rng);
    EXPECT_TRUE((a * a.transpose()).is_positive_semidefinite())
        << "iteration " << i;
  }
}

}  // namespace
}  // namespace cvsafe::util
