// Trace equivalence: the generic sim::Engine adapters must reproduce the
// frozen pre-engine per-scenario loops (tests/support/legacy_reference.hpp)
// bit-for-bit — same outcome flags, same reach times, same per-step
// control sequence, same emergency switching — for every scenario and a
// spread of seeds and disturbance settings. Unlike the golden-file test
// (which pins against a committed CSV), this test runs both
// implementations side by side, so it keeps guarding the engine even when
// the golden file is legitimately regenerated.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "cvsafe/nn/mlp.hpp"
#include "support/legacy_reference.hpp"

namespace {

using namespace cvsafe;

void expect_result_equal(const legacy_ref::LegacyResult& legacy,
                         const sim::RunResult& engine,
                         const std::string& what) {
  EXPECT_EQ(legacy.collided, engine.collided) << what;
  EXPECT_EQ(legacy.reached, engine.reached) << what;
  EXPECT_EQ(legacy.reach_time, engine.reach_time) << what;  // exact
  EXPECT_EQ(legacy.eta, engine.eta) << what;                // exact
  EXPECT_EQ(legacy.steps, engine.steps) << what;
  EXPECT_EQ(legacy.emergency_steps, engine.emergency_steps) << what;
}

// ---------------------------------------------------------------------------
// Left turn
// ---------------------------------------------------------------------------

sim::AgentBlueprint expert_blueprint(const sim::LeftTurnSimConfig& cfg,
                                     sim::AgentConfig agent) {
  sim::AgentBlueprint bp;
  bp.name = "expert";
  bp.scenario = cfg.make_scenario();
  bp.sensor = cfg.sensor;
  bp.config = agent;
  bp.config.use_expert_planner = true;
  return bp;
}

TEST(SimTraceEquivalence, LeftTurnExpertVariants) {
  const sim::LeftTurnSimConfig base = sim::LeftTurnSimConfig::paper_defaults();
  const sim::AgentConfig variants[] = {sim::AgentConfig::pure_nn(),
                                       sim::AgentConfig::basic_compound(),
                                       sim::AgentConfig::ultimate_compound()};
  const comm::CommConfig comms[] = {comm::CommConfig::no_disturbance(),
                                    comm::CommConfig::delayed(0.4, 0.25),
                                    comm::CommConfig::messages_lost()};
  for (std::size_t vi = 0; vi < std::size(variants); ++vi) {
    for (std::size_t ci = 0; ci < std::size(comms); ++ci) {
      sim::LeftTurnSimConfig cfg = base;
      cfg.comm = comms[ci];
      if (ci == 2) cfg.sensor = sensing::SensorConfig::uniform(2.0);
      const auto bp = expert_blueprint(cfg, variants[vi]);
      for (const std::uint64_t seed : {1u, 17u, 1234u}) {
        const auto legacy = legacy_ref::run_left_turn(cfg, bp, seed);
        const auto engine = sim::run_left_turn_simulation(cfg, bp, seed);
        expect_result_equal(legacy, engine,
                            "left_turn v" + std::to_string(vi) + " c" +
                                std::to_string(ci) + " seed" +
                                std::to_string(seed));
      }
    }
  }
}

TEST(SimTraceEquivalence, LeftTurnPerStepTrace) {
  sim::LeftTurnSimConfig cfg = sim::LeftTurnSimConfig::paper_defaults();
  cfg.comm = comm::CommConfig::delayed(0.5, 0.25);
  const auto bp = expert_blueprint(cfg, sim::AgentConfig::ultimate_compound());

  for (const std::uint64_t seed : {3u, 7u, 29u, 404u}) {
    legacy_ref::LegacyTrace legacy_trace;
    const auto legacy =
        legacy_ref::run_left_turn(cfg, bp, seed, &legacy_trace);
    sim::SimTrace engine_trace;
    const auto engine =
        sim::run_left_turn_simulation(cfg, bp, seed, &engine_trace);
    expect_result_equal(legacy, engine, "trace seed" + std::to_string(seed));

    ASSERT_EQ(legacy_trace.accel_commands.size(),
              engine_trace.accel_commands.size());
    for (std::size_t i = 0; i < legacy_trace.accel_commands.size(); ++i) {
      // Every per-step observable matches exactly.
      EXPECT_EQ(legacy_trace.accel_commands[i],
                engine_trace.accel_commands[i])
          << "step " << i;
      EXPECT_EQ(legacy_trace.emergency_flags[i],
                engine_trace.emergency_flags[i])
          << "step " << i;
      EXPECT_EQ(legacy_trace.tau1_lo[i], engine_trace.tau1_lo[i])
          << "step " << i;
      EXPECT_EQ(legacy_trace.tau1_hi[i], engine_trace.tau1_hi[i])
          << "step " << i;
      EXPECT_EQ(legacy_trace.ego_p[i], engine_trace.ego[i].state.p)
          << "step " << i;
      EXPECT_EQ(legacy_trace.c1_p[i], engine_trace.c1[i].state.p)
          << "step " << i;
    }
    ASSERT_EQ(legacy_trace.switches.size(), engine_trace.switches.size());
    for (std::size_t i = 0; i < legacy_trace.switches.size(); ++i) {
      EXPECT_EQ(legacy_trace.switches[i].step, engine_trace.switches[i].step);
      EXPECT_EQ(legacy_trace.switches[i].to_emergency,
                engine_trace.switches[i].to_emergency);
    }
  }
}

TEST(SimTraceEquivalence, LeftTurnNnAndEnsemble) {
  util::Rng net_rng(42);
  const auto net = std::make_shared<const nn::Mlp>(
      nn::MlpSpec{{4, 16, 16, 1}}, net_rng);
  util::Rng net_rng2(43);
  const auto net2 = std::make_shared<const nn::Mlp>(
      nn::MlpSpec{{4, 16, 16, 1}}, net_rng2);

  sim::LeftTurnSimConfig cfg = sim::LeftTurnSimConfig::paper_defaults();
  cfg.comm = comm::CommConfig::delayed(0.4, 0.25);

  for (const auto& agent : {sim::AgentConfig::pure_nn(),
                            sim::AgentConfig::ultimate_compound()}) {
    sim::AgentBlueprint bp;
    bp.name = "nn";
    bp.scenario = cfg.make_scenario();
    bp.net = net;
    bp.sensor = cfg.sensor;
    bp.config = agent;
    for (const std::uint64_t seed : {5u, 55u, 555u}) {
      const auto legacy = legacy_ref::run_left_turn(cfg, bp, seed);
      const auto engine = sim::run_left_turn_simulation(cfg, bp, seed);
      expect_result_equal(legacy, engine, "nn seed" + std::to_string(seed));
    }
  }

  sim::AgentBlueprint bp;
  bp.name = "ensemble";
  bp.scenario = cfg.make_scenario();
  bp.ensemble = {net, net2};
  bp.sensor = cfg.sensor;
  bp.config = sim::AgentConfig::ultimate_compound();
  bp.config.ensemble_sigma_penalty = 0.5;
  for (const std::uint64_t seed : {8u, 88u}) {
    const auto legacy = legacy_ref::run_left_turn(cfg, bp, seed);
    const auto engine = sim::run_left_turn_simulation(cfg, bp, seed);
    expect_result_equal(legacy, engine,
                        "ensemble seed" + std::to_string(seed));
  }
}

// ---------------------------------------------------------------------------
// Lane change
// ---------------------------------------------------------------------------

TEST(SimTraceEquivalence, LaneChange) {
  sim::LaneChangeSimConfig cfg;
  sim::LaneChangePlannerConfig raw;
  raw.use_compound = false;
  sim::LaneChangePlannerConfig basic;
  basic.use_info_filter = false;
  const sim::LaneChangePlannerConfig planners[] = {
      raw, basic, sim::LaneChangePlannerConfig{}};

  const comm::CommConfig comms[] = {comm::CommConfig::no_disturbance(),
                                    comm::CommConfig::delayed(0.3, 0.25)};
  for (std::size_t pi = 0; pi < std::size(planners); ++pi) {
    for (std::size_t ci = 0; ci < std::size(comms); ++ci) {
      sim::LaneChangeSimConfig c = cfg;
      c.comm = comms[ci];
      for (const std::uint64_t seed : {301u, 302u, 9001u}) {
        const auto legacy =
            legacy_ref::run_lane_change(c, planners[pi], seed);
        const auto engine =
            sim::run_lane_change_simulation(c, planners[pi], seed);
        expect_result_equal(legacy, engine,
                            "lane_change p" + std::to_string(pi) + " c" +
                                std::to_string(ci) + " seed" +
                                std::to_string(seed));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Intersection
// ---------------------------------------------------------------------------

TEST(SimTraceEquivalence, Intersection) {
  sim::IntersectionSimConfig cfg;
  const comm::CommConfig comms[] = {comm::CommConfig::no_disturbance(),
                                    comm::CommConfig::delayed(0.4, 0.25)};
  for (const bool use_compound : {false, true}) {
    for (std::size_t ci = 0; ci < std::size(comms); ++ci) {
      sim::IntersectionSimConfig c = cfg;
      c.comm = comms[ci];
      for (const std::uint64_t seed : {401u, 402u, 777u}) {
        const auto legacy =
            legacy_ref::run_intersection(c, use_compound, seed);
        const auto engine =
            sim::run_intersection_simulation(c, use_compound, seed);
        expect_result_equal(legacy, engine,
                            std::string("intersection ") +
                                (use_compound ? "compound" : "raw") + " c" +
                                std::to_string(ci) + " seed" +
                                std::to_string(seed));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Multi-vehicle left turn
// ---------------------------------------------------------------------------

TEST(SimTraceEquivalence, MultiVehicle) {
  const sim::LeftTurnSimConfig config =
      sim::LeftTurnSimConfig::paper_defaults();
  sim::MultiAgentSetup expert;
  expert.scenario = config.make_scenario();  // net == nullptr -> expert

  sim::MultiAgentSetup naive = expert;
  naive.use_info_filter = false;
  naive.use_aggressive = false;

  util::Rng net_rng(42);
  sim::MultiAgentSetup nn = expert;
  nn.net = std::make_shared<const nn::Mlp>(nn::MlpSpec{{4, 16, 16, 1}},
                                           net_rng);

  const sim::MultiAgentSetup setups[] = {expert, naive, nn};
  for (std::size_t si = 0; si < std::size(setups); ++si) {
    for (const std::size_t n_cars : {1u, 2u, 3u}) {
      sim::MultiVehicleConfig multi;
      multi.num_oncoming = n_cars;
      sim::LeftTurnSimConfig noisy = config;
      noisy.comm = comm::CommConfig::delayed(0.3, 0.25);
      for (const std::uint64_t seed : {501u, 502u}) {
        const auto legacy =
            legacy_ref::run_multi(noisy, multi, setups[si], seed);
        const auto engine =
            sim::run_multi_left_turn_simulation(noisy, multi, setups[si],
                                                seed);
        expect_result_equal(legacy, engine,
                            "multi s" + std::to_string(si) + " n" +
                                std::to_string(n_cars) + " seed" +
                                std::to_string(seed));
      }
    }
  }
}

}  // namespace
