#include "cvsafe/scenario/lane_change.hpp"

#include <gtest/gtest.h>

#include "cvsafe/util/rng.hpp"
#include "cvsafe/vehicle/accel_profile.hpp"
#include "cvsafe/vehicle/dynamics.hpp"

namespace cvsafe::scenario {
namespace {

const vehicle::VehicleLimits kEgo{0.0, 18.0, -6.0, 3.0};
const vehicle::VehicleLimits kC1{3.0, 15.0, -3.0, 2.0};
constexpr double kDt = 0.05;

LaneChangeScenario make_scenario() {
  return LaneChangeScenario(LaneChangeGeometry{}, kEgo, kC1, kDt);
}

filter::StateEstimate exact(double t, double p, double v) {
  filter::StateEstimate est;
  est.t = t;
  est.p = util::Interval::point(p);
  est.v = util::Interval::point(v);
  est.p_hat = p;
  est.v_hat = v;
  est.valid = true;
  return est;
}

TEST(LaneChangeGeometry, Defaults) {
  const LaneChangeGeometry g;
  EXPECT_TRUE(g.valid());
  EXPECT_LT(g.ego_start, g.merge_point);
  EXPECT_LT(g.merge_point, g.target);
}

TEST(LaneChange, MergedPredicate) {
  const auto scn = make_scenario();
  EXPECT_FALSE(scn.merged(-1.0));
  EXPECT_FALSE(scn.merged(0.0));
  EXPECT_TRUE(scn.merged(0.1));
}

TEST(LaneChange, UnsafeRequiresMergeAndGapViolation) {
  const auto scn = make_scenario();
  // Merged at p0 = 5 with C1 at p1 = 9: gap 4 < 8 -> unsafe.
  EXPECT_TRUE(scn.in_unsafe_set(5.0, exact(0.0, 9.0, 8.0)));
  // Same gap but still on the ramp: safe.
  EXPECT_FALSE(scn.in_unsafe_set(-5.0, exact(0.0, -1.0, 8.0)));
  // Merged with ample gap: safe.
  EXPECT_FALSE(scn.in_unsafe_set(5.0, exact(0.0, 40.0, 8.0)));
}

TEST(LaneChange, UnknownVehicleBlocksMerge) {
  const auto scn = make_scenario();
  filter::StateEstimate unknown;
  EXPECT_TRUE(scn.in_boundary_safe_set(0.0, -5.0, 10.0, unknown));
}

TEST(LaneChange, EmergencyStopsBeforeMergePoint) {
  const auto scn = make_scenario();
  // 10 m to the merge point at 8 m/s: a = -64/20 = -3.2.
  EXPECT_NEAR(scn.emergency_accel(-10.0, 8.0), -3.2, 1e-12);
  EXPECT_EQ(scn.emergency_accel(5.0, 8.0), kEgo.a_min);  // merged: brake
}

TEST(LaneChange, ViolationCheck) {
  const auto scn = make_scenario();
  EXPECT_TRUE(scn.violation(10.0, 15.0));   // gap 5 < 8
  EXPECT_FALSE(scn.violation(10.0, 18.1));  // gap > 8
  EXPECT_FALSE(scn.violation(-1.0, 2.0));   // on ramp
}

// Safety invariant: monitor + emergency wrapped around a full-throttle
// planner never violates the gap constraint, over random oncoming traffic.
TEST(LaneChangeProperty, CompoundControlNeverViolates) {
  const auto scn_obj = make_scenario();
  auto scn = std::make_shared<const LaneChangeScenario>(scn_obj);
  const LaneChangeSafetyModel model(scn);

  for (std::uint64_t seed = 1; seed <= 150; ++seed) {
    util::Rng rng(seed);
    vehicle::DoubleIntegrator ego_dyn(kEgo);
    vehicle::DoubleIntegrator c1_dyn(kC1);
    vehicle::VehicleState ego{scn->geometry().ego_start,
                              rng.uniform(6.0, 14.0)};
    vehicle::VehicleState c1{scn->geometry().merge_point +
                                 rng.uniform(0.0, 25.0),
                             rng.uniform(kC1.v_min, 10.0)};
    const auto profile =
        vehicle::AccelProfile::random(600, kDt, c1.v, kC1, {}, rng);

    for (int step = 0; step < 600; ++step) {
      const double t = step * kDt;
      LaneChangeWorld world;
      world.t = t;
      world.ego = ego;
      world.c1_monitor = exact(t, c1.p, c1.v);  // perfect information here
      const double a0 = model.in_boundary_safe_set(world)
                            ? model.emergency_accel(world)
                            : kEgo.a_max;  // reckless planner
      ego = ego_dyn.step(ego, a0, kDt);
      c1 = c1_dyn.step(c1, profile.at(static_cast<std::size_t>(step)), kDt);
      ASSERT_FALSE(scn->violation(ego.p, c1.p))
          << "seed " << seed << " t=" << t << " ego=" << ego.p
          << " c1=" << c1.p;
      if (scn->reached_target(ego.p)) break;
    }
  }
}

// Liveness: the wrapped planner still reaches the target (emergency does
// not deadlock the merge) in the common case.
TEST(LaneChangeProperty, CompoundControlUsuallyReaches) {
  const auto scn = std::make_shared<const LaneChangeScenario>(make_scenario());
  const LaneChangeSafetyModel model(scn);
  int reached = 0;
  const int trials = 50;
  for (std::uint64_t seed = 1; seed <= trials; ++seed) {
    util::Rng rng(seed * 7919);
    vehicle::DoubleIntegrator ego_dyn(kEgo);
    vehicle::DoubleIntegrator c1_dyn(kC1);
    vehicle::VehicleState ego{scn->geometry().ego_start, 10.0};
    vehicle::VehicleState c1{scn->geometry().merge_point +
                                 rng.uniform(5.0, 25.0),
                             rng.uniform(5.0, 10.0)};
    const auto profile =
        vehicle::AccelProfile::random(1200, kDt, c1.v, kC1, {}, rng);
    for (int step = 0; step < 1200; ++step) {
      const double t = step * kDt;
      LaneChangeWorld world;
      world.t = t;
      world.ego = ego;
      world.c1_monitor = exact(t, c1.p, c1.v);
      const double a0 = model.in_boundary_safe_set(world)
                            ? model.emergency_accel(world)
                            : kEgo.a_max;
      ego = ego_dyn.step(ego, a0, kDt);
      c1 = c1_dyn.step(c1, profile.at(static_cast<std::size_t>(step)), kDt);
      if (scn->reached_target(ego.p)) {
        ++reached;
        break;
      }
    }
  }
  EXPECT_GT(reached, trials * 8 / 10);
}

}  // namespace
}  // namespace cvsafe::scenario
