#include "cvsafe/verify/certify.hpp"

#include <gtest/gtest.h>

namespace cvsafe::verify {
namespace {

const vehicle::VehicleLimits kEgo{0.0, 15.0, -6.0, 3.0};
const vehicle::VehicleLimits kC1{2.0, 15.0, -3.0, 3.0};

scenario::LeftTurnScenario paper_scenario() {
  return scenario::LeftTurnScenario(scenario::LeftTurnGeometry{}, kEgo, kC1,
                                    0.05);
}

TEST(CertifyEq4, PaperConfigurationHolds) {
  // Coarser grid than the example binary keeps the test fast.
  GridSpec grid;
  grid.p_step = 0.2;
  grid.v_step = 0.5;
  grid.tau_step = 1.0;
  const Certificate cert = certify_emergency_eq4(paper_scenario(), grid);
  EXPECT_GT(cert.checked, 1000u);
  EXPECT_TRUE(cert.holds()) << cert.counterexamples.size()
                            << " counterexamples, first: "
                            << (cert.counterexamples.empty()
                                    ? ""
                                    : cert.counterexamples[0].detail);
}

TEST(CertifyResolvability, PaperConfigurationHolds) {
  util::Rng rng(1);
  const Certificate cert =
      certify_resolvability_invariance(paper_scenario(), 5000, rng);
  EXPECT_GT(cert.checked, 500u);
  EXPECT_TRUE(cert.holds());
}

TEST(CertifyWindowSoundness, PaperConfigurationHolds) {
  util::Rng rng(2);
  const Certificate cert =
      certify_window_soundness(paper_scenario(), 80, rng);
  EXPECT_GT(cert.checked, 500u);
  EXPECT_TRUE(cert.holds());
}

TEST(CertifyMonotonicity, HoldsUnderDelayAndNoise) {
  util::Rng rng(3);
  const Certificate cert = certify_filter_monotonicity(
      paper_scenario(), sensing::SensorConfig::uniform(3.0),
      comm::CommConfig::delayed(0.5, 0.25), 60, rng);
  EXPECT_GT(cert.checked, 2000u);
  EXPECT_TRUE(cert.holds());
}

TEST(CertifyMonotonicity, HoldsWithMessagesLost) {
  util::Rng rng(4);
  const Certificate cert = certify_filter_monotonicity(
      paper_scenario(), sensing::SensorConfig::uniform(4.8),
      comm::CommConfig::messages_lost(), 60, rng);
  EXPECT_TRUE(cert.holds());
}

// The certifier must actually DETECT violations. Certifying window
// soundness for a scenario that UNDERSTATES the oncoming vehicle's
// authority (claims |a| <= 0.5 while the certifier's workload — drawn
// from the scenario's limits — is checked against a window computed with
// the understated limits) is exercised by comparing scenarios directly:
// windows computed with weaker claimed limits must fail to bracket
// trajectories generated under the true, stronger limits.
TEST(CertifyDetection, UnderstatedLimitsBreakWindowSoundness) {
  // Scenario whose claimed oncoming limits are much weaker than the
  // actual vehicle (v capped at 9 instead of 15): its Eq. 7 windows are
  // too narrow for real traffic. We emulate "real traffic" by running the
  // certifier of the TRUE scenario but checking the WEAK scenario's
  // windows manually.
  const scenario::LeftTurnScenario weak(
      scenario::LeftTurnGeometry{}, kEgo,
      vehicle::VehicleLimits{2.0, 9.0, -0.5, 0.5}, 0.05);
  util::Rng rng(7);
  const Certificate cert = certify_window_soundness(weak, 80, rng);
  // The certifier generates trajectories with the weak limits too, so it
  // still holds — the *self-consistency* is what is certified.
  EXPECT_TRUE(cert.holds());

  // Cross-check: a weak-scenario window evaluated on a fast real state
  // fails to contain the entry a strong vehicle can achieve — i.e. the
  // certificates are configuration-specific, not vacuous.
  filter::StateEstimate est;
  est.t = 0.0;
  est.p = util::Interval::point(-50.0);
  est.v = util::Interval::point(9.0);
  est.p_hat = -50.0;
  est.v_hat = 9.0;
  est.valid = true;
  const auto weak_window = weak.c1_window_conservative(est);
  const auto strong_window =
      paper_scenario().c1_window_conservative(est);
  // The strong vehicle can arrive earlier than the weak window's start.
  EXPECT_LT(strong_window.lo, weak_window.lo);
}

TEST(CertifyLaneChange, PaperStyleConfigurationHolds) {
  const scenario::LaneChangeScenario scn(
      scenario::LaneChangeGeometry{}, vehicle::VehicleLimits{0, 18, -6, 3},
      vehicle::VehicleLimits{3, 15, -3, 2}, 0.05);
  util::Rng rng(11);
  const Certificate cert = certify_lane_change_eq4(scn, 4000, rng);
  EXPECT_GT(cert.checked, 300u);
  EXPECT_TRUE(cert.holds()) << (cert.counterexamples.empty()
                                    ? ""
                                    : cert.counterexamples[0].detail);
}

TEST(CertifyIntersection, DefaultConfigurationHolds) {
  const scenario::IntersectionScenario scn(
      scenario::IntersectionGeometry{}, kEgo, 0.05);
  util::Rng rng(12);
  const Certificate cert = certify_intersection_invariance(scn, 4000, rng);
  EXPECT_GT(cert.checked, 500u);
  EXPECT_TRUE(cert.holds()) << (cert.counterexamples.empty()
                                    ? ""
                                    : cert.counterexamples[0].detail);
}

TEST(Certificate, HoldsReflectsCounterexamples) {
  Certificate cert;
  cert.property = "synthetic";
  EXPECT_TRUE(cert.holds());
  cert.counterexamples.push_back(Counterexample{0, 0, 0, {}, "boom"});
  EXPECT_FALSE(cert.holds());
}

}  // namespace
}  // namespace cvsafe::verify
