#include "cvsafe/util/rounded_interval.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "cvsafe/util/rng.hpp"

namespace cvsafe::util::rounded {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(RoundedSteps, PrevNextBracketStrictly) {
  for (const double x : {0.0, 1.0, -1.0, 0.1, -0.1, 1e300, -1e300, 1e-300}) {
    EXPECT_LT(prev(x), x);
    EXPECT_GT(next(x), x);
  }
}

TEST(RoundedSteps, InfinitiesAreFixedPoints) {
  EXPECT_EQ(prev(-kInf), -kInf);
  EXPECT_EQ(next(kInf), kInf);
  // The one-sided steps still move off the opposite infinity.
  EXPECT_LT(prev(kInf), kInf);
  EXPECT_GT(next(-kInf), -kInf);
}

TEST(RoundedScalarOps, BracketExactRationals) {
  // 0.1 + 0.2 has a well-known non-representable exact value; the
  // directed results must straddle it. Comparing against the
  // round-to-nearest result is the strongest portable statement.
  EXPECT_LT(add_down(0.1, 0.2), 0.1 + 0.2);
  EXPECT_GT(add_up(0.1, 0.2), 0.1 + 0.2);
  EXPECT_LT(mul_down(0.1, 0.3), 0.1 * 0.3);
  EXPECT_GT(mul_up(0.1, 0.3), 0.1 * 0.3);
  EXPECT_LT(div_down(1.0, 3.0), 1.0 / 3.0);
  EXPECT_GT(div_up(1.0, 3.0), 1.0 / 3.0);
  EXPECT_LT(sub_down(0.3, 0.1), 0.3 - 0.1);
  EXPECT_GT(sub_up(0.3, 0.1), 0.3 - 0.1);
}

TEST(RoundedIntervalOps, EmptyIsAbsorbing) {
  const Interval e = Interval::empty_interval();
  const Interval a{1.0, 2.0};
  EXPECT_TRUE(add(e, a).empty());
  EXPECT_TRUE(sub(a, e).empty());
  EXPECT_TRUE(mul(e, a).empty());
  EXPECT_TRUE(neg(e).empty());
  EXPECT_TRUE(scale(e, 2.0).empty());
  EXPECT_TRUE(div_scalar(e, 2.0).empty());
  EXPECT_TRUE(sqr(e).empty());
  EXPECT_TRUE(widen_ulps(e, 3).empty());
  EXPECT_TRUE(max(e, a).empty());
  EXPECT_TRUE(min(a, e).empty());
  EXPECT_TRUE(clamp(e, 0.0, 1.0).empty());
}

TEST(RoundedIntervalOps, NegationIsExact) {
  const Interval a{-1.5, 2.25};
  const Interval n = neg(a);
  EXPECT_EQ(n.lo, -2.25);
  EXPECT_EQ(n.hi, 1.5);
}

/// Fuzz: every concrete round-to-nearest evaluation at sampled points of
/// the operand intervals must land inside the directed result. This is
/// the property the sound certifier's FP-containment argument rests on.
TEST(RoundedIntervalOps, ConcreteEvaluationsAreContained) {
  util::Rng rng(20230417);
  for (int trial = 0; trial < 2000; ++trial) {
    const double a1 = rng.uniform(-10.0, 10.0);
    const double a2 = a1 + rng.uniform(0.0, 5.0);
    const double b1 = rng.uniform(-10.0, 10.0);
    const double b2 = b1 + rng.uniform(0.0, 5.0);
    const Interval a{a1, a2};
    const Interval b{b1, b2};
    const double s = rng.uniform(-4.0, 4.0);

    const Interval sum = add(a, b);
    const Interval dif = sub(a, b);
    const Interval prd = mul(a, b);
    const Interval sca = scale(a, s);
    const Interval squ = sqr(a);

    for (int sample = 0; sample < 8; ++sample) {
      const double x = rng.uniform(a.lo, a.hi);
      const double y = rng.uniform(b.lo, b.hi);
      EXPECT_TRUE(sum.contains(x + y));
      EXPECT_TRUE(dif.contains(x - y));
      EXPECT_TRUE(prd.contains(x * y));
      EXPECT_TRUE(sca.contains(x * s));
      EXPECT_TRUE(squ.contains(x * x));
      if (s != 0.0) {
        EXPECT_TRUE(div_scalar(a, s).contains(x / s));
      }
    }
  }
}

TEST(RoundedIntervalOps, SqrIsNonNegativeAndTight) {
  const Interval straddle{-2.0, 3.0};
  const Interval sq = sqr(straddle);
  EXPECT_EQ(sq.lo, 0.0);
  EXPECT_GE(sq.hi, 9.0);
  // Tighter than the four-corner product, which would give lo < 0 slack.
  EXPECT_LE(sq.hi, next(9.0));

  const Interval negative{-3.0, -2.0};
  const Interval nsq = sqr(negative);
  EXPECT_LE(nsq.lo, 4.0);
  EXPECT_GE(nsq.hi, 9.0);
  EXPECT_GE(nsq.lo, prev(4.0));
}

TEST(RoundedIntervalOps, ScaleAndDivScalarHandleSigns) {
  const Interval a{2.0, 3.0};
  const Interval neg_scaled = scale(a, -2.0);
  EXPECT_LE(neg_scaled.lo, -6.0);
  EXPECT_GE(neg_scaled.hi, -4.0);
  const Interval neg_divided = div_scalar(a, -2.0);
  EXPECT_LE(neg_divided.lo, -1.5);
  EXPECT_GE(neg_divided.hi, -1.0);
}

TEST(RoundedIntervalOps, WidenUlpsWidensExactly) {
  const Interval a{1.0, 2.0};
  const Interval w = widen_ulps(a, 3);
  EXPECT_EQ(w.lo, prev(prev(prev(1.0))));
  EXPECT_EQ(w.hi, next(next(next(2.0))));
  const Interval same = widen_ulps(a, 0);
  EXPECT_EQ(same.lo, 1.0);
  EXPECT_EQ(same.hi, 2.0);
}

TEST(RoundedIntervalOps, LatticeOpsAreExact) {
  const Interval a{1.0, 5.0};
  const Interval b{2.0, 3.0};
  EXPECT_EQ(max(a, b), (Interval{2.0, 5.0}));
  EXPECT_EQ(min(a, b), (Interval{1.0, 3.0}));
  EXPECT_EQ(clamp(a, 2.0, 4.0), (Interval{2.0, 4.0}));
}

/// Accumulated directed sums never cross the exact value: sum 0.1 n times
/// in interval arithmetic and compare against a high-precision anchor.
TEST(RoundedIntervalOps, AccumulatedSumStaysSound) {
  Interval acc{0.0, 0.0};
  const Interval tenth = Interval::point(0.1);
  for (int i = 0; i < 1000; ++i) acc = add(acc, tenth);
  // 0.1 is slightly above 1/10 in binary; 1000 * 0.1 = 100 + ~5.5e-15.
  EXPECT_LT(acc.lo, 100.000000000001);
  EXPECT_GT(acc.hi, 100.0);
  EXPECT_LT(acc.hi - acc.lo, 1e-9);  // slack stays ~ulp-scale
}

}  // namespace
}  // namespace cvsafe::util::rounded
