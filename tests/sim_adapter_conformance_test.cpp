// Adapter conformance: properties EVERY ScenarioAdapter must satisfy to
// plug into sim::Engine, expressed as a typed test suite. Adding a new
// scenario means adding one AdapterFixture specialization and listing it
// in AdapterTypes — the engine-level invariants (determinism, step
// bounds, outcome/eta consistency, batch aggregation) then come for free.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "cvsafe/sim/intersection.hpp"
#include "cvsafe/sim/lane_change.hpp"
#include "cvsafe/sim/left_turn.hpp"
#include "cvsafe/sim/multi_vehicle.hpp"

namespace {

using namespace cvsafe;

// --- one fixture per adapter ------------------------------------------------

struct LeftTurnFixture {
  using Adapter = sim::LeftTurnAdapter;
  static Adapter make() {
    sim::LeftTurnSimConfig cfg = sim::LeftTurnSimConfig::paper_defaults();
    cfg.comm = comm::CommConfig::delayed(0.3, 0.25);
    sim::AgentBlueprint bp;
    bp.name = "expert";
    bp.scenario = cfg.make_scenario();
    bp.sensor = cfg.sensor;
    bp.config = sim::AgentConfig::ultimate_compound();
    bp.config.use_expert_planner = true;
    return Adapter(cfg, bp);
  }
};

struct LaneChangeFixture {
  using Adapter = sim::LaneChangeAdapter;
  static Adapter make() {
    sim::LaneChangeSimConfig cfg;
    cfg.comm = comm::CommConfig::delayed(0.3, 0.25);
    return Adapter(cfg, sim::LaneChangePlannerConfig{});
  }
};

struct IntersectionFixture {
  using Adapter = sim::IntersectionAdapter;
  static Adapter make() {
    sim::IntersectionSimConfig cfg;
    cfg.comm = comm::CommConfig::delayed(0.3, 0.25);
    return Adapter(cfg, /*use_compound=*/true);
  }
};

struct MultiVehicleFixture {
  using Adapter = sim::MultiVehicleAdapter;
  static Adapter make() {
    sim::LeftTurnSimConfig cfg = sim::LeftTurnSimConfig::paper_defaults();
    cfg.comm = comm::CommConfig::delayed(0.3, 0.25);
    sim::MultiAgentSetup setup;
    setup.scenario = cfg.make_scenario();
    return Adapter(cfg, sim::MultiVehicleConfig{}, setup);
  }
};

// --- the conformance suite --------------------------------------------------

template <typename Fixture>
class AdapterConformance : public ::testing::Test {};

using AdapterTypes = ::testing::Types<LeftTurnFixture, LaneChangeFixture,
                                      IntersectionFixture,
                                      MultiVehicleFixture>;
TYPED_TEST_SUITE(AdapterConformance, AdapterTypes);

TYPED_TEST(AdapterConformance, HasNonEmptyNameAndValidRunConfig) {
  const auto adapter = TypeParam::make();
  EXPECT_FALSE(adapter.name().empty());
  const sim::RunConfig& run = adapter.run();
  EXPECT_GT(run.dt_c, 0.0);
  EXPECT_GT(run.horizon, 0.0);
  EXPECT_GE(run.total_steps(), 1u);
}

TYPED_TEST(AdapterConformance, SameSeedIsBitReproducible) {
  const auto adapter = TypeParam::make();
  for (const std::uint64_t seed : {1u, 99u, 4242u}) {
    const sim::RunResult a = sim::run_episode(adapter, seed);
    const sim::RunResult b = sim::run_episode(adapter, seed);
    EXPECT_EQ(a.collided, b.collided);
    EXPECT_EQ(a.reached, b.reached);
    EXPECT_EQ(a.reach_time, b.reach_time);  // exact
    EXPECT_EQ(a.eta, b.eta);                // exact
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.emergency_steps, b.emergency_steps);
  }
}

TYPED_TEST(AdapterConformance, StepAndOutcomeInvariants) {
  const auto adapter = TypeParam::make();
  const std::size_t total = adapter.run().total_steps();
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const sim::RunResult r = sim::run_episode(adapter, seed);
    EXPECT_GE(r.steps, 1u);
    EXPECT_LE(r.steps, total);
    EXPECT_LE(r.emergency_steps, r.steps);
    // Collided and reached are mutually exclusive episode outcomes.
    EXPECT_FALSE(r.collided && r.reached);
    if (r.reached) {
      EXPECT_GT(r.reach_time, 0.0);
      EXPECT_GT(r.eta, 0.0);  // reaching scores positive utility
    } else {
      EXPECT_EQ(r.reach_time, 0.0);
    }
    if (r.collided) {
      EXPECT_LT(r.eta, 0.0);  // unsafe scores negative
    }
    if (!r.collided && r.steps < total) {
      // Early termination without collision must mean target reached.
      EXPECT_TRUE(r.reached);
    }
  }
}

TYPED_TEST(AdapterConformance, StepHookSeesEveryStepInOrder) {
  struct Recorder final
      : sim::StepHook<typename TypeParam::Adapter::WorldType> {
    using World = typename TypeParam::Adapter::WorldType;
    std::vector<std::size_t> steps;
    std::size_t emergencies = 0;
    bool finished = false;
    void on_step(std::size_t step, double t, const World& world,
                 const vehicle::VehicleState& /*ego*/, double /*a0*/,
                 bool emergency,
                 const sim::Episode<World>& /*episode*/) override {
      EXPECT_EQ(world.t, t);
      steps.push_back(step);
      if (emergency) ++emergencies;
    }
    void on_finish(const sim::Episode<World>& /*episode*/) override {
      finished = true;
    }
  };

  const auto adapter = TypeParam::make();
  Recorder rec;
  const sim::RunResult r = sim::run_episode(adapter, /*seed=*/7, &rec);
  EXPECT_TRUE(rec.finished);
  ASSERT_EQ(rec.steps.size(), r.steps);
  for (std::size_t i = 0; i < rec.steps.size(); ++i) {
    EXPECT_EQ(rec.steps[i], i);  // consecutive from zero
  }
  EXPECT_EQ(rec.emergencies, r.emergency_steps);
}

TYPED_TEST(AdapterConformance, BatchMatchesIndependentEpisodes) {
  const auto adapter = TypeParam::make();
  constexpr std::size_t kN = 6;
  constexpr std::uint64_t kBase = 11;
  const std::vector<sim::RunResult> batch =
      sim::run_episodes(adapter, kN, kBase, /*threads=*/2);
  ASSERT_EQ(batch.size(), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    const sim::RunResult solo = sim::run_episode(adapter, kBase + i);
    EXPECT_EQ(batch[i].eta, solo.eta) << "episode " << i;        // exact
    EXPECT_EQ(batch[i].steps, solo.steps) << "episode " << i;
    EXPECT_EQ(batch[i].reach_time, solo.reach_time) << "episode " << i;
  }

  const sim::BatchStats stats = sim::BatchStats::from_results(batch);
  EXPECT_EQ(stats.n, kN);
  ASSERT_EQ(stats.etas.size(), kN);
  std::size_t steps = 0;
  for (const auto& r : batch) steps += r.steps;
  EXPECT_EQ(stats.total_steps, steps);
  EXPECT_LE(stats.safe_count, kN);
  EXPECT_LE(stats.reached_count, kN);
}

}  // namespace
