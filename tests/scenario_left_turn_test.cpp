#include "cvsafe/scenario/left_turn.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "cvsafe/util/rng.hpp"
#include "cvsafe/vehicle/accel_profile.hpp"
#include "cvsafe/vehicle/dynamics.hpp"
#include "cvsafe/vehicle/trajectory.hpp"

namespace cvsafe::scenario {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

const vehicle::VehicleLimits kEgo{0.0, 15.0, -6.0, 3.0};
const vehicle::VehicleLimits kC1{2.0, 15.0, -3.0, 3.0};

LeftTurnScenario make_scenario() {
  return LeftTurnScenario(LeftTurnGeometry{}, kEgo, kC1, 0.05);
}

filter::StateEstimate exact_estimate(double t, double p, double v,
                                     double a = 0.0) {
  filter::StateEstimate est;
  est.t = t;
  est.p = util::Interval::point(p);
  est.v = util::Interval::point(v);
  est.p_hat = p;
  est.v_hat = v;
  est.a_hat = a;
  est.valid = true;
  return est;
}

TEST(Geometry, DefaultsMatchPaper) {
  const LeftTurnGeometry g;
  EXPECT_EQ(g.ego_front, 5.0);
  EXPECT_EQ(g.ego_back, 15.0);
  EXPECT_EQ(g.ego_start, -30.0);
  EXPECT_TRUE(g.valid());
  EXPECT_EQ(LeftTurnGeometry::oncoming_to_frame(50.5), -50.5);
}

TEST(Slack, BeforeZoneMatchesEq5) {
  const auto scn = make_scenario();
  // d_b = v^2 / (2*6); at p0 = -30, v = 6: d_b = 3 -> s = 5 - 3 + 30 = 32.
  EXPECT_NEAR(scn.slack(-30.0, 6.0), 32.0, 1e-12);
  // Fast approach: v = 12 -> d_b = 12 -> s = 5 - 12 - p0.
  EXPECT_NEAR(scn.slack(0.0, 12.0), -7.0, 1e-12);
}

TEST(Slack, InsideZoneIsNegative) {
  const auto scn = make_scenario();
  EXPECT_NEAR(scn.slack(10.0, 5.0), 10.0 - 15.0, 1e-12);
  EXPECT_LE(scn.slack(14.9, 0.0), 0.0);
}

TEST(Slack, PastZoneIsInfinite) {
  const auto scn = make_scenario();
  EXPECT_EQ(scn.slack(15.1, 5.0), kInf);
}

TEST(EgoWindow, BeforeZoneProjection) {
  const auto scn = make_scenario();
  const auto w = scn.ego_passing_window(1.0, -5.0, 10.0);
  EXPECT_NEAR(w.lo, 1.0 + 1.0, 1e-12);  // 10 m to front at 10 m/s
  EXPECT_NEAR(w.hi, 1.0 + 2.0, 1e-12);  // 20 m to back
}

TEST(EgoWindow, StoppedBeforeZoneIsEmpty) {
  const auto scn = make_scenario();
  EXPECT_TRUE(scn.ego_passing_window(0.0, -5.0, 0.0).empty());
}

TEST(EgoWindow, InsideZoneStartsNow) {
  const auto scn = make_scenario();
  const auto w = scn.ego_passing_window(2.0, 10.0, 5.0);
  EXPECT_EQ(w.lo, 2.0);
  EXPECT_NEAR(w.hi, 3.0, 1e-12);
  // Stopped inside: occupancy never ends.
  const auto stuck = scn.ego_passing_window(2.0, 10.0, 0.0);
  EXPECT_EQ(stuck.hi, kInf);
}

TEST(EgoWindow, PastZoneIsEmpty) {
  const auto scn = make_scenario();
  EXPECT_TRUE(scn.ego_passing_window(0.0, 16.0, 5.0).empty());
}

TEST(C1Window, ConservativeFromExactState) {
  const auto scn = make_scenario();
  // C1 at u=-50 (35 m from its front line), v=10.
  const auto w = scn.c1_window_conservative(exact_estimate(0.0, -50.0, 10.0));
  ASSERT_FALSE(w.empty());
  // Earliest entry: full throttle (a=3, cap 15): ramp from 10 to 15 covers
  // 125/6 m in 5/3 s, remaining at 15 m/s.
  const double d_th = (15.0 * 15.0 - 100.0) / 6.0;
  const double expect_lo = (15.0 - 10.0) / 3.0 + (35.0 - d_th) / 15.0;
  EXPECT_NEAR(w.lo, expect_lo, 1e-9);
  // Latest exit: full braking (a=-3) to floor 2: covers (100-4)/6 = 16 m,
  // remaining 45 - 16 = 29 m at 2 m/s.
  const double expect_hi = (2.0 - 10.0) / -3.0 + 29.0 / 2.0;
  EXPECT_NEAR(w.hi, expect_hi, 1e-9);
}

TEST(C1Window, EmptyOncePast) {
  const auto scn = make_scenario();
  EXPECT_TRUE(
      scn.c1_window_conservative(exact_estimate(0.0, -4.0, 8.0)).empty());
}

TEST(C1Window, StartsNowWhenInside) {
  const auto scn = make_scenario();
  const auto w = scn.c1_window_conservative(exact_estimate(3.0, -10.0, 8.0));
  EXPECT_EQ(w.lo, 3.0);
}

TEST(C1Window, InvalidEstimateIsMaximallyConservative) {
  const auto scn = make_scenario();
  filter::StateEstimate invalid;
  invalid.t = 2.0;
  const auto w = scn.c1_window_conservative(invalid);
  EXPECT_EQ(w.lo, 2.0);
  EXPECT_EQ(w.hi, kInf);
}

TEST(C1Window, AggressiveIsSubsetForPointEstimates) {
  const auto scn = make_scenario();
  util::Rng rng(31);
  const AggressiveBuffers buffers;
  for (int i = 0; i < 3000; ++i) {
    const auto est = exact_estimate(0.0, rng.uniform(-70, 0),
                                    rng.uniform(kC1.v_min, kC1.v_max),
                                    rng.uniform(kC1.a_min, kC1.a_max));
    const auto cons = scn.c1_window_conservative(est);
    const auto aggr = scn.c1_window_aggressive(est, buffers);
    EXPECT_TRUE(cons.inflated(1e-9).contains(aggr))
        << "cons=[" << cons.lo << "," << cons.hi << "] aggr=[" << aggr.lo
        << "," << aggr.hi << "]";
  }
}

TEST(C1Window, AggressiveMuchTighterThanConservative) {
  const auto scn = make_scenario();
  const auto est = exact_estimate(0.0, -50.0, 10.0, 0.0);
  const auto cons = scn.c1_window_conservative(est);
  const auto aggr = scn.c1_window_aggressive(est, AggressiveBuffers{});
  EXPECT_LT(aggr.width(), 0.5 * cons.width());
}

// Soundness of the conservative window: along any feasible C1 trajectory,
// the real entry/exit times stay inside the window computed from any
// earlier exact state.
TEST(C1WindowProperty, ConservativeWindowIsSound) {
  const auto scn = make_scenario();
  util::Rng rng(33);
  const double dt_c = 0.05;
  for (int trial = 0; trial < 200; ++trial) {
    vehicle::DoubleIntegrator dyn(kC1);
    vehicle::VehicleState s{rng.uniform(-60, -40), rng.uniform(5, 12)};
    const auto profile =
        vehicle::AccelProfile::random(400, dt_c, s.v, kC1, {}, rng);
    vehicle::Trajectory traj;
    for (std::size_t step = 0; step < 400; ++step) {
      traj.push({static_cast<double>(step) * dt_c, s, profile.at(step)});
      s = dyn.step(s, profile.at(step), dt_c);
    }
    const double entry =
        traj.first_time_at_position(scn.geometry().c1_front);
    const double exit = traj.first_time_at_position(scn.geometry().c1_back);
    if (entry < 0.0 || exit < 0.0) continue;
    for (std::size_t step = 0; step < 400; step += 20) {
      const auto& snap = traj[step];
      if (snap.t >= entry) break;
      const auto w = scn.c1_window_conservative(
          exact_estimate(snap.t, snap.state.p, snap.state.v, snap.a));
      ASSERT_FALSE(w.empty());
      // 1e-3 tolerance: the "real" entry/exit times are measured by
      // linear interpolation of the sampled (quadratic) trajectory.
      EXPECT_LE(w.lo, entry + 1e-3) << "trial " << trial;
      EXPECT_GE(w.hi, exit - 1e-3) << "trial " << trial;
    }
  }
}

TEST(UnsafeSet, RequiresBothConditions) {
  const auto scn = make_scenario();
  const util::Interval tau1{2.0, 5.0};
  // Negative slack + overlapping windows -> unsafe.
  // p0 = 0, v = 12: d_b = 12 > 5 -> s < 0; window [5/12, 15/12]+t... use
  // a state whose ego window overlaps tau1.
  EXPECT_TRUE(scn.in_unsafe_set(1.8, 0.0, 12.0, tau1));
  // Positive slack -> safe regardless of overlap.
  EXPECT_FALSE(scn.in_unsafe_set(1.8, -30.0, 6.0, tau1));
  // Negative slack but disjoint windows -> not in the unsafe set.
  EXPECT_FALSE(scn.in_unsafe_set(20.0, 0.0, 12.0, tau1));
  // Empty oncoming window -> never unsafe.
  EXPECT_FALSE(
      scn.in_unsafe_set(1.8, 0.0, 12.0, util::Interval::empty_interval()));
}

TEST(Emergency, LeastBrakingBeforeFrontLine) {
  const auto scn = make_scenario();
  const util::Interval tau1{1.0, 5.0};
  // 10 m gap at 6 m/s: a = -36/20 = -1.8.
  EXPECT_NEAR(scn.emergency_accel(0.0, -5.0, 6.0, tau1), -1.8, 1e-12);
}

TEST(Emergency, FullThrottleInsideOrPastZone) {
  const auto scn = make_scenario();
  const util::Interval tau1{1.0, 5.0};
  EXPECT_EQ(scn.emergency_accel(0.0, 6.0, 5.0, tau1), kEgo.a_max);
  EXPECT_EQ(scn.emergency_accel(0.0, 20.0, 5.0, tau1), kEgo.a_max);
}

TEST(Emergency, HoldsWhenStoppedAtLine) {
  const auto scn = make_scenario();
  EXPECT_EQ(scn.emergency_accel(0.0, 5.0, 0.0, util::Interval{1.0, 5.0}),
            0.0);
}

TEST(Emergency, CommittedPassAheadAccelerates) {
  const auto scn = make_scenario();
  // Committed (cannot stop: at 14 m/s, d_b = 16.3 m > 0.1 m gap) and the
  // window is far in the future: full throttle clears well before it.
  EXPECT_EQ(scn.emergency_accel(0.0, 4.9, 14.0, util::Interval{8.0, 12.0}),
            kEgo.a_max);
}

TEST(Emergency, CommittedPassBehindBrakes) {
  const auto scn = make_scenario();
  // Committed but the window opens almost immediately: cannot clear ahead,
  // so the resolving strategy is to brake and delay behind C1.
  EXPECT_EQ(scn.emergency_accel(0.0, 0.0, 12.0, util::Interval{0.2, 4.0}),
            kEgo.a_min);
}

TEST(Resolvable, PassAheadAndDelayBehind) {
  const auto scn = make_scenario();
  // Fast and close with a late window: resolvable by passing ahead.
  EXPECT_TRUE(scn.resolvable(0.0, 0.0, 14.0, util::Interval{6.0, 9.0}));
  // Slow and far with an early window: resolvable by delaying behind.
  EXPECT_TRUE(scn.resolvable(0.0, -30.0, 3.0, util::Interval{1.0, 4.0}));
  // Inside the zone with an imminent window and low speed: doomed.
  EXPECT_FALSE(scn.resolvable(0.0, 6.0, 1.0, util::Interval{0.5, 6.0}));
  // Conflict already over: always resolvable.
  EXPECT_TRUE(scn.resolvable(10.0, 0.0, 1.0, util::Interval{0.5, 6.0}));
  EXPECT_TRUE(
      scn.resolvable(0.0, 0.0, 1.0, util::Interval::empty_interval()));
}

TEST(ZonePredicates, Occupancy) {
  const auto scn = make_scenario();
  EXPECT_FALSE(scn.ego_in_zone(5.0));  // boundary not inside
  EXPECT_TRUE(scn.ego_in_zone(10.0));
  EXPECT_FALSE(scn.ego_in_zone(15.0));
  EXPECT_TRUE(scn.c1_in_zone(-10.0));
  EXPECT_FALSE(scn.c1_in_zone(-20.0));
  EXPECT_TRUE(scn.collision(10.0, -10.0));
  EXPECT_FALSE(scn.collision(10.0, -20.0));
  EXPECT_TRUE(scn.ego_reached_target(20.0));
  EXPECT_FALSE(scn.ego_reached_target(19.9));
}

}  // namespace
}  // namespace cvsafe::scenario
