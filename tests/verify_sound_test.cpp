#include "cvsafe/verify/sound.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <memory>

#include "cvsafe/core/certified_bounds.hpp"
#include "cvsafe/nn/interval_mlp.hpp"
#include "cvsafe/obs/metrics.hpp"
#include "cvsafe/util/rng.hpp"

namespace cvsafe::verify {
namespace {

using util::Interval;

const vehicle::VehicleLimits kEgo{0.0, 15.0, -6.0, 3.0};
const vehicle::VehicleLimits kC1{2.0, 15.0, -3.0, 3.0};

scenario::LeftTurnScenario make_scenario() {
  return scenario::LeftTurnScenario(scenario::LeftTurnGeometry{}, kEgo, kC1,
                                    0.05);
}

nn::Mlp make_net(std::uint64_t seed) {
  nn::MlpSpec spec{{planners::InputEncoding::dim(), 8, 8, 1},
                   nn::Activation::kTanh, nn::Activation::kIdentity};
  util::Rng rng(seed);
  return nn::Mlp(spec, rng);
}

TEST(Eq4Sound, ProvesPaperScenario) {
  const auto scenario = make_scenario();
  const Eq4SoundResult result = certify_eq4_sound(scenario);
  EXPECT_TRUE(result.proved);
  EXPECT_GT(result.margin_leaves, 0u);
  EXPECT_EQ(result.margin_leaves + result.lemma_leaves,
            result.leaves.size());
  EXPECT_EQ(result.v_domain, (Interval{0.0, 15.0}));
  EXPECT_EQ(result.s_domain, (Interval{0.0, 35.0}));  // ego_front-ego_start

  // Every margin leaf carries a certified non-negative bound; interior
  // leaves (away from the tight s = 0 manifold) dominate the tree.
  for (const auto& leaf : result.leaves) {
    if (leaf.rule == Eq4Rule::kMargin) {
      EXPECT_GE(leaf.slack_next_lb, 0.0);
    }
  }
  EXPECT_GT(result.margin_leaves, result.lemma_leaves);
}

TEST(Eq4Sound, LemmaLeavesHugTheBoundaryOrStop) {
  const auto scenario = make_scenario();
  SoundBnbOptions options;
  const Eq4SoundResult result = certify_eq4_sound(scenario, options);
  const double s_width = result.s_domain.width();
  for (const auto& leaf : result.leaves) {
    if (leaf.rule != Eq4Rule::kLemma) continue;
    // A lemma leaf either touches the tight boundary region (small s,
    // down at the width floor) or consists of states that stop within
    // the step (successor speed interval entirely below zero).
    const bool at_floor =
        leaf.s.width() / s_width <= options.min_width * 1.0001 ||
        leaf.v.width() / result.v_domain.width() <=
            options.min_width * 1.0001;
    const double a_worst = scenario.ego_limits().a_min;
    const bool may_stop =
        leaf.v.lo + a_worst * scenario.control_period() <= 0.0;
    EXPECT_TRUE(at_floor || may_stop)
        << "lemma leaf v=[" << leaf.v.lo << "," << leaf.v.hi << "] s=["
        << leaf.s.lo << "," << leaf.s.hi << "]";
  }
}

TEST(Eq4Sound, RequiresZeroSpeedFloor) {
  util::ScopedContractMode mode(util::ContractMode::kThrow);
  const vehicle::VehicleLimits moving_floor{1.0, 15.0, -6.0, 3.0};
  const scenario::LeftTurnScenario scenario(scenario::LeftTurnGeometry{},
                                            moving_floor, kC1, 0.05);
  EXPECT_THROW(certify_eq4_sound(scenario), util::ContractViolation);
}

TEST(NnBoundsSound, ProvesSmallNetwork) {
  const auto scenario = make_scenario();
  const nn::Mlp net = make_net(11);
  const planners::InputEncoding encoding;
  const auto domain = NnInputDomain::planner_view(scenario, encoding);
  const NnBoundsResult result =
      certify_nn_bounds_sound(net, encoding, domain, {});
  EXPECT_TRUE(result.proved);
  EXPECT_FALSE(result.hull.empty());
  EXPECT_TRUE(result.assert_range.contains(result.hull));
  EXPECT_GT(result.leaves.size(), 0u);

  // The hull is exactly the union of the leaf enclosures.
  Interval rebuilt = Interval::empty_interval();
  for (const auto& leaf : result.leaves) rebuilt = rebuilt.hull(leaf.out);
  EXPECT_EQ(rebuilt, result.hull);
}

TEST(NnBoundsSound, HullEnclosesConcreteEvaluations) {
  const auto scenario = make_scenario();
  const nn::Mlp net = make_net(12);
  const planners::InputEncoding encoding;
  const auto domain = NnInputDomain::planner_view(scenario, encoding);
  const NnBoundsResult result =
      certify_nn_bounds_sound(net, encoding, domain, {});
  ASSERT_TRUE(result.proved);

  nn::Workspace ws;
  util::Rng rng(13);
  for (int trial = 0; trial < 1000; ++trial) {
    std::array<double, 4> x{};
    for (std::size_t i = 0; i < 4; ++i) {
      x[i] = rng.uniform(result.domain[i].lo, result.domain[i].hi);
    }
    EXPECT_TRUE(result.hull.contains(net.predict_scalar(x, ws)));
  }
}

TEST(NnBoundsSound, TightAssertFailsHonestly) {
  // Vacuity guard: an assert range the network genuinely exceeds must
  // come back unproved, not silently certified.
  const auto scenario = make_scenario();
  const nn::Mlp net = make_net(11);
  const planners::InputEncoding encoding;
  const auto domain = NnInputDomain::planner_view(scenario, encoding);
  SoundBnbOptions options;
  options.nn_assert = Interval{-1e-6, 1e-6};
  options.max_depth = 6;
  const NnBoundsResult result =
      certify_nn_bounds_sound(net, encoding, domain, options);
  EXPECT_FALSE(result.proved);
}

TEST(SoundCertificate, DeterministicAcrossThreadCounts) {
  const auto scenario = make_scenario();
  const nn::Mlp net = make_net(11);
  const planners::InputEncoding encoding;

  SoundBnbOptions one;
  one.threads = 1;
  SoundBnbOptions many;
  many.threads = 4;
  const SoundCertificate a = certify_sound(scenario, net, encoding, one);
  const SoundCertificate b = certify_sound(scenario, net, encoding, many);
  EXPECT_EQ(certificate_json(a, scenario, net, encoding, one),
            certificate_json(b, scenario, net, encoding, many));
}

TEST(SoundCertificate, JsonSelfHashMatches) {
  const auto scenario = make_scenario();
  const nn::Mlp net = make_net(11);
  const planners::InputEncoding encoding;
  const SoundBnbOptions options;
  const SoundCertificate cert =
      certify_sound(scenario, net, encoding, options);
  const std::string json =
      certificate_json(cert, scenario, net, encoding, options);

  const std::string marker = "  \"hash\": \"";
  const auto idx = json.rfind(marker);
  ASSERT_NE(idx, std::string::npos);
  const std::string claimed = json.substr(idx + marker.size(), 16);
  EXPECT_EQ(claimed, fnv1a_hex(json.substr(0, idx)));
}

TEST(SoundCertificate, MetricsAreRecorded) {
  const auto scenario = make_scenario();
  const nn::Mlp net = make_net(11);
  const planners::InputEncoding encoding;
  obs::MetricsRegistry metrics;
  SoundBnbOptions options;
  options.metrics = &metrics;
  const SoundCertificate cert =
      certify_sound(scenario, net, encoding, options);
  EXPECT_EQ(
      metrics.counter("cvsafe_sound_nn_leaves_total").value(),
      cert.nn.leaves.size());
  EXPECT_EQ(
      metrics
          .counter("cvsafe_sound_eq4_leaves_total{rule=\"margin\"}")
          .value(),
      cert.eq4.margin_leaves);
}

TEST(Fnv1a, MatchesReferenceVectors) {
  // Canonical FNV-1a 64-bit test vectors; the Python checker implements
  // the same function and both must agree with the published values.
  EXPECT_EQ(fnv1a_hex(""), "cbf29ce484222325");
  EXPECT_EQ(fnv1a_hex("a"), "af63dc4c8601ec8c");
  EXPECT_EQ(fnv1a_hex("foobar"), "85944171f73967e8");
}

TEST(CertifiedBoundsPlanner, ClampsOnlyOutsideTheHull) {
  struct World {};
  class Fixed final : public core::PlannerBase<World> {
   public:
    double next = 0.0;
    double plan(const World&) override { return next; }
    std::string_view name() const override { return "fixed"; }
  };
  auto inner = std::make_shared<Fixed>();
  core::CertifiedBoundsPlanner<World> planner(inner, Interval{-6.0, 3.0});
  EXPECT_EQ(planner.name(), "certified(fixed)");

  inner->next = 1.5;
  EXPECT_EQ(planner.plan({}), 1.5);
  EXPECT_EQ(planner.violations(), 0u);

  inner->next = 9.0;  // outside the certified hull: clamp + count
  EXPECT_EQ(planner.plan({}), 3.0);
  inner->next = -12.0;
  EXPECT_EQ(planner.plan({}), -6.0);
  EXPECT_EQ(planner.violations(), 2u);
}

}  // namespace
}  // namespace cvsafe::verify
