// The adversarial parameter space: every point of the unit box must
// decode onto a validated FaultPlan, and the stealth screen must pass
// the shipped presets while discarding deliberately loud plans — the
// envelope that makes a low-margin finding meaningful.

#include "cvsafe/adv/param_space.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "cvsafe/sim/fault_campaign.hpp"
#include "cvsafe/util/contracts.hpp"
#include "cvsafe/util/rng.hpp"

namespace cvsafe::adv {
namespace {

using util::ContractMode;
using util::ContractViolation;
using util::ScopedContractMode;

TEST(ParamSpace, BoundsCoverEveryDimensionWithNamedRanges) {
  const auto bounds = ParamSpace::bounds();
  ASSERT_EQ(bounds.size(), ParamSpace::kDim);
  for (const auto& b : bounds) {
    EXPECT_NE(b.name, nullptr);
    EXPECT_LT(b.lo, b.hi) << b.name;
  }
}

TEST(ParamSpace, DecodeProducesValidatedPlansAcrossTheBox) {
  ScopedContractMode mode(ContractMode::kThrow);
  const ParamSpace space;
  util::Rng rng(7);
  std::vector<double> x(ParamSpace::kDim);
  for (int trial = 0; trial < 200; ++trial) {
    for (double& v : x) v = rng.uniform01();
    const fault::FaultPlan plan = space.decode(x);  // validates inside
    EXPECT_EQ(plan.name, "adv");
    EXPECT_GE(plan.channel.reorder_delay_max, plan.channel.reorder_delay_min);
  }
  // The corners too.
  std::fill(x.begin(), x.end(), 0.0);
  space.decode(x);
  std::fill(x.begin(), x.end(), 1.0);
  space.decode(x);
}

TEST(ParamSpace, DecodeClampsOutOfBoxComponents) {
  const ParamSpace space;
  std::vector<double> below(ParamSpace::kDim, -5.0);
  std::vector<double> zero(ParamSpace::kDim, 0.0);
  std::vector<double> above(ParamSpace::kDim, 5.0);
  std::vector<double> one(ParamSpace::kDim, 1.0);
  EXPECT_EQ(space.decode(below).to_ini(), space.decode(zero).to_ini());
  EXPECT_EQ(space.decode(above).to_ini(), space.decode(one).to_ini());
}

TEST(ParamSpace, DecodeRejectsWrongArity) {
  ScopedContractMode mode(ContractMode::kThrow);
  const ParamSpace space;
  const std::vector<double> wrong(ParamSpace::kDim - 1, 0.5);
  EXPECT_THROW(space.decode(wrong), ContractViolation);
  EXPECT_THROW(ParamSpace(1.5), ContractViolation);
}

TEST(ParamSpace, AdmitsQuietCellsAndScreensLoudOnes) {
  const ParamSpace space(0.25);
  sim::CampaignCell quiet;
  quiet.messages_accepted = 90;
  quiet.messages_rejected = 10;
  EXPECT_TRUE(space.admits(quiet));
  sim::CampaignCell loud;
  loud.messages_accepted = 60;
  loud.messages_rejected = 40;
  EXPECT_FALSE(space.admits(loud));
  sim::CampaignCell silent;  // no traffic at all counts as stealthy
  EXPECT_TRUE(space.admits(silent));
}

// The shipped campaign presets must sit inside the stealth envelope
// under the search's evaluation protocol: a screen that rejected the
// baseline workloads would make every search result vacuous.
TEST(ParamSpace, ShippedPresetsStayUnderTheStealthThreshold) {
  const ParamSpace space;
  for (const char* name :
       {"delay-jitter", "reorder-duplicate", "corruption", "blackout",
        "burst"}) {
    const auto cond = sim::FaultCondition::preset(name);
    const auto episodes =
        sim::run_campaign_cell("left-turn", cond, 2, 2026, 1);
    const auto cell = sim::aggregate_cell(name, "left-turn", episodes);
    EXPECT_TRUE(space.admits(cell))
        << name << " rejected at rate " << cell.rejection_rate();
  }
}

// A deliberately loud plan — corruption well past the hardened gate's
// trust margins — must trip the screen: detected attacks are handled
// attacks and never count as findings.
TEST(ParamSpace, DeliberatelyLoudPlanIsScreenedOut) {
  fault::FaultPlan loud;
  loud.name = "loud";
  loud.channel.corrupt_prob = 0.9;
  loud.channel.corrupt_delta_p = 8.0;
  loud.channel.corrupt_delta_v = 6.0;
  loud.channel.stale_spoof_prob = 0.5;
  loud.channel.stale_spoof_max = 2.0;
  const sim::FaultCondition cond{"loud", loud,
                                 comm::CommConfig::delayed(0.2, 0.25)};
  const auto episodes = sim::run_campaign_cell("left-turn", cond, 2, 2026, 1);
  const auto cell = sim::aggregate_cell("loud", "left-turn", episodes);
  const ParamSpace space;
  EXPECT_FALSE(space.admits(cell));
  EXPECT_GT(cell.rejection_rate(), 0.5);
}

}  // namespace
}  // namespace cvsafe::adv
