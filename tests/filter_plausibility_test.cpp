#include "cvsafe/filter/plausibility.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "cvsafe/filter/kalman.hpp"
#include "cvsafe/util/contracts.hpp"

namespace cvsafe::filter {
namespace {

using util::ContractMode;
using util::ContractViolation;
using util::ScopedContractMode;

const vehicle::VehicleLimits kLimits{2.0, 15.0, -3.0, 3.0};
const double kNan = std::numeric_limits<double>::quiet_NaN();

comm::Message make_msg(double t, double p, double v, double a = 0.0) {
  return comm::Message{1, vehicle::VehicleSnapshot{t, {p, v}, a}};
}

TEST(GateConfig, PermissiveArmsNothing) {
  const auto g = GateConfig::permissive();
  EXPECT_FALSE(g.check_range);
  EXPECT_EQ(g.max_age, 0.0);
  EXPECT_EQ(g.bound_margin, 0.0);
  EXPECT_EQ(g.nis_gate, 0.0);
  EXPECT_EQ(g.trust_margin_p, 0.0);
}

TEST(GateConfig, HardenedArmsEveryScreen) {
  const auto g = GateConfig::hardened();
  EXPECT_TRUE(g.check_range);
  EXPECT_GT(g.max_age, 0.0);
  EXPECT_GT(g.bound_margin, 0.0);
  EXPECT_GT(g.nis_gate, 0.0);
  EXPECT_GT(g.trust_margin_p, 0.0);
  EXPECT_GT(g.trust_margin_v, 0.0);
}

TEST(GateConfig, ValidateRejectsNanAndNegative) {
  ScopedContractMode mode(ContractMode::kThrow);
  GateConfig g;
  g.max_age = kNan;
  EXPECT_THROW(g.validate(), ContractViolation);
  g = GateConfig{};
  g.bound_margin = -1.0;
  EXPECT_THROW(g.validate(), ContractViolation);
  g = GateConfig{};
  g.nis_gate = kNan;
  EXPECT_THROW(PlausibilityGate{g}, ContractViolation);
}

TEST(PlausibilityGate, PermissiveAcceptsEveryFinitePayload) {
  PlausibilityGate gate;
  // Wildly implausible but finite: the permissive gate passes it.
  const auto r =
      gate.screen(make_msg(0.0, 1e6, -500.0, 100.0), kLimits, 10.0,
                  std::nullopt, nullptr);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->p, 1e6);
  EXPECT_EQ(gate.counters().accepted, 1u);
  EXPECT_EQ(gate.counters().total_rejected(), 0u);
}

TEST(PlausibilityGate, RejectsNonFinitePayload) {
  PlausibilityGate gate;
  EXPECT_FALSE(gate.screen(make_msg(0.0, kNan, 5.0), kLimits, 0.0,
                           std::nullopt, nullptr)
                   .has_value());
  EXPECT_FALSE(gate.screen(make_msg(kNan, 0.0, 5.0), kLimits, 0.0,
                           std::nullopt, nullptr)
                   .has_value());
  EXPECT_EQ(gate.counters().non_finite, 2u);
  EXPECT_EQ(gate.counters().accepted, 0u);
}

TEST(PlausibilityGate, RangeScreenUsesActuationEnvelope) {
  PlausibilityGate gate(GateConfig::hardened());  // range_margin 0.5
  // v_max 15 + margin 0.5: v = 15.4 passes, v = 15.6 fails.
  EXPECT_TRUE(gate.screen(make_msg(0.0, 0.0, 15.4), kLimits, 0.0,
                          std::nullopt, nullptr)
                  .has_value());
  EXPECT_FALSE(gate.screen(make_msg(0.0, 0.0, 15.6), kLimits, 0.0,
                           std::nullopt, nullptr)
                   .has_value());
  // a_min -3 - margin: a = -3.6 fails.
  EXPECT_FALSE(gate.screen(make_msg(0.0, 0.0, 5.0, -3.6), kLimits, 0.0,
                           std::nullopt, nullptr)
                   .has_value());
  EXPECT_EQ(gate.counters().out_of_range, 2u);
  EXPECT_EQ(gate.counters().accepted, 1u);
}

TEST(PlausibilityGate, StalenessScreenCatchesSpoofedTimestamps) {
  PlausibilityGate gate(GateConfig::hardened());  // max_age 1.0
  // Newest absorbed information is at t = 5; a payload claiming t = 3.5
  // is older than the budget allows.
  EXPECT_FALSE(gate.screen(make_msg(3.5, 0.0, 5.0), kLimits, 5.0,
                           std::nullopt, nullptr)
                   .has_value());
  EXPECT_EQ(gate.counters().stale, 1u);
  // Within the budget it passes.
  EXPECT_TRUE(gate.screen(make_msg(4.5, 0.0, 5.0), kLimits, 5.0,
                          std::nullopt, nullptr)
                  .has_value());
}

TEST(PlausibilityGate, BoundScreenRejectsPayloadOutsideSoundBounds) {
  PlausibilityGate gate(GateConfig::hardened());  // bound_margin 1.0
  const auto fused = StateBounds::exact(0.0, 0.0, 5.0);
  // Claimed position 50 m away from bounds that certify [0, 0]: even
  // inflated by the margin there is no overlap.
  EXPECT_FALSE(gate.screen(make_msg(0.0, 50.0, 5.0), kLimits, 0.0, fused,
                           nullptr)
                   .has_value());
  EXPECT_EQ(gate.counters().implausible, 1u);
  // An honest payload inside the bounds passes.
  EXPECT_TRUE(gate.screen(make_msg(0.0, 0.5, 5.0), kLimits, 0.0, fused,
                          nullptr)
                  .has_value());
}

TEST(PlausibilityGate, InnovationScreenRejectsKalmanOutliers) {
  PlausibilityGate gate(GateConfig::hardened());  // nis_gate 25
  KalmanFilter kf(KalmanConfig{0.1, 1.0, 1.0, 1.0, 3.0, 64});
  kf.update({0.0, 0.0, 5.0, 0.0});
  kf.update({0.1, 0.5, 5.0, 0.0});
  const auto kview = kf.view();
  // Payload 40 m from the prediction: NIS blows past the gate.
  EXPECT_FALSE(gate.screen(make_msg(0.2, 40.0, 5.0), kLimits, 0.1,
                           std::nullopt, &kview)
                   .has_value());
  EXPECT_EQ(gate.counters().implausible, 1u);
  // Consistent payload passes.
  EXPECT_TRUE(gate.screen(make_msg(0.2, 1.0, 5.0), kLimits, 0.1,
                          std::nullopt, &kview)
                  .has_value());
}

TEST(PlausibilityGate, RecentlyRejectedHoldsThenClears) {
  PlausibilityGate gate(GateConfig::hardened());  // suspect_hold 0.5
  EXPECT_FALSE(gate.recently_rejected(0.0));
  // Rejection while the newest trusted time is 2.0.
  ASSERT_FALSE(gate.screen(make_msg(2.0, kNan, 5.0), kLimits, 2.0,
                           std::nullopt, nullptr)
                   .has_value());
  EXPECT_TRUE(gate.recently_rejected(2.0));
  EXPECT_TRUE(gate.recently_rejected(2.5));
  EXPECT_FALSE(gate.recently_rejected(2.6));
}

TEST(PlausibilityGate, SuspectHoldAnchorsOnTrustedTimeNotPayload) {
  PlausibilityGate gate(GateConfig::hardened());
  // A spoofed payload claiming the far past must not start the suspect
  // window in the past.
  ASSERT_FALSE(gate.screen(make_msg(-100.0, kNan, 5.0), kLimits, 3.0,
                           std::nullopt, nullptr)
                   .has_value());
  EXPECT_TRUE(gate.recently_rejected(3.2));
}

TEST(PlausibilityGate, ScreenFieldsIsStatelessNonFiniteScreen) {
  EXPECT_TRUE(
      PlausibilityGate::screen_fields(make_msg(0.0, 1.0, 2.0)).has_value());
  EXPECT_FALSE(
      PlausibilityGate::screen_fields(make_msg(0.0, 1.0, kNan)).has_value());
}

}  // namespace
}  // namespace cvsafe::filter
