#include "cvsafe/sensing/sensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cvsafe::sensing {
namespace {

vehicle::VehicleSnapshot snap(double t, double p, double v, double a) {
  return vehicle::VehicleSnapshot{t, {p, v}, a};
}

TEST(SensorConfig, UniformHelper) {
  const auto c = SensorConfig::uniform(2.5, 0.2);
  EXPECT_EQ(c.delta_p, 2.5);
  EXPECT_EQ(c.delta_v, 2.5);
  EXPECT_EQ(c.delta_a, 2.5);
  EXPECT_EQ(c.period, 0.2);
}

TEST(Sensor, MeasuresAtPeriodOnly) {
  Sensor sensor(SensorConfig::uniform(1.0, 0.1));
  util::Rng rng(1);
  int readings = 0;
  for (int step = 0; step < 20; ++step) {
    if (sensor.sense(snap(step * 0.05, 0.0, 0.0, 0.0), rng)) ++readings;
  }
  EXPECT_EQ(readings, 10);  // every other control step
}

TEST(Sensor, NoiseWithinBounds) {
  Sensor sensor(SensorConfig{0.1, 1.0, 0.5, 0.25});
  util::Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const auto r = sensor.sense(snap(i * 0.1, 10.0, 5.0, 1.0), rng);
    ASSERT_TRUE(r.has_value());
    ASSERT_LE(std::abs(r->p - 10.0), 1.0);
    ASSERT_LE(std::abs(r->v - 5.0), 0.5);
    ASSERT_LE(std::abs(r->a - 1.0), 0.25);
    EXPECT_EQ(r->t, i * 0.1);
  }
}

TEST(Sensor, NoiseIsUniformNotDegenerate) {
  Sensor sensor(SensorConfig::uniform(1.0, 0.1));
  util::Rng rng(5);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto r = sensor.sense(snap(i * 0.1, 0.0, 0.0, 0.0), rng);
    sum += r->p;
    sum2 += r->p * r->p;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0 / 3.0, 0.01);  // Var(U[-1,1]) = 1/3
}

TEST(Sensor, DeterministicGivenSeed) {
  Sensor s1(SensorConfig::uniform(1.0, 0.1));
  Sensor s2(SensorConfig::uniform(1.0, 0.1));
  util::Rng r1(9), r2(9);
  for (int i = 0; i < 50; ++i) {
    const auto a = s1.sense(snap(i * 0.1, 1.0, 2.0, 0.5), r1);
    const auto b = s2.sense(snap(i * 0.1, 1.0, 2.0, 0.5), r2);
    ASSERT_EQ(a.has_value(), b.has_value());
    EXPECT_EQ(a->p, b->p);
    EXPECT_EQ(a->v, b->v);
    EXPECT_EQ(a->a, b->a);
  }
}

TEST(Sensor, ZeroNoiseIsExact) {
  Sensor sensor(SensorConfig::uniform(0.0, 0.1));
  util::Rng rng(1);
  const auto r = sensor.sense(snap(0.0, 3.5, -1.25, 0.75), rng);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->p, 3.5);
  EXPECT_EQ(r->v, -1.25);
  EXPECT_EQ(r->a, 0.75);
}

}  // namespace
}  // namespace cvsafe::sensing
