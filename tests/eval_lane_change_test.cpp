// The lane-change evaluation harness: determinism, safety guarantee, and
// the raw-vs-compound contrast across settings.

#include "cvsafe/eval/lane_change_sim.hpp"

#include <gtest/gtest.h>

namespace cvsafe::eval {
namespace {

LaneChangeSimConfig base_config() { return LaneChangeSimConfig{}; }

TEST(LaneChangeSim, DeterministicGivenSeed) {
  const auto cfg = base_config();
  LaneChangePlannerConfig planner;
  const auto a = run_lane_change_simulation(cfg, planner, 5);
  const auto b = run_lane_change_simulation(cfg, planner, 5);
  EXPECT_EQ(a.collided, b.collided);
  EXPECT_EQ(a.reach_time, b.reach_time);
  EXPECT_EQ(a.emergency_steps, b.emergency_steps);
}

TEST(LaneChangeSim, RawCruisePlannerViolates) {
  const auto cfg = base_config();
  LaneChangePlannerConfig raw;
  raw.use_compound = false;
  std::size_t violations = 0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    violations += run_lane_change_simulation(cfg, raw, seed).collided;
  }
  EXPECT_GT(violations, 10u);  // the workload genuinely probes the gap
}

TEST(LaneChangeSim, CompoundNeverViolates) {
  for (const bool lost : {false, true}) {
    auto cfg = base_config();
    if (lost) {
      cfg.comm = comm::CommConfig::messages_lost();
      cfg.sensor = sensing::SensorConfig::uniform(2.0);
    }
    LaneChangePlannerConfig compound;
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
      const auto r = run_lane_change_simulation(cfg, compound, seed);
      ASSERT_FALSE(r.collided) << "seed " << seed << " lost=" << lost;
    }
  }
}

TEST(LaneChangeSim, CompoundStillReaches) {
  const auto cfg = base_config();
  LaneChangePlannerConfig compound;
  const auto stats = run_lane_change_batch(cfg, compound, 60, 1, 0);
  EXPECT_GT(stats.reached_count, 50u);
  EXPECT_GT(stats.mean_eta, 0.0);
}

TEST(LaneChangeSim, BatchAggregation) {
  const auto cfg = base_config();
  LaneChangePlannerConfig compound;
  const auto stats = run_lane_change_batch(cfg, compound, 40, 7, 4);
  EXPECT_EQ(stats.n, 40u);
  EXPECT_EQ(stats.safe_count, 40u);
  EXPECT_GT(stats.total_steps, 0u);
  // Parallel equals serial (determinism under threading).
  const auto serial = run_lane_change_batch(cfg, compound, 40, 7, 1);
  EXPECT_EQ(serial.mean_eta, stats.mean_eta);
  EXPECT_EQ(serial.emergency_steps, stats.emergency_steps);
}

TEST(LaneChangeSim, EmergencyEngagesWhenTrafficIsTight) {
  auto cfg = base_config();
  cfg.c1_gap_max = 10.0;  // lead vehicle close ahead of the merge point
  cfg.c1_v_max = 6.0;     // and slow
  LaneChangePlannerConfig compound;
  const auto stats = run_lane_change_batch(cfg, compound, 40, 1, 0);
  EXPECT_EQ(stats.safe_count, stats.n);
  EXPECT_GT(stats.emergency_steps, 0u);
}

}  // namespace
}  // namespace cvsafe::eval
