#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "cvsafe/obs/event.hpp"
#include "cvsafe/obs/jsonl.hpp"
#include "cvsafe/obs/metrics.hpp"
#include "cvsafe/obs/profile.hpp"
#include "cvsafe/obs/recorder.hpp"

/// \file obs_test.cpp
/// Unit tests for the observability module: the event recorder (enable
/// gating, context stamping, the overflow cap), the deterministic JSONL
/// serializer (fixed key order, %.17g doubles, non-finite -> null,
/// string escaping), the metrics registry (bucket semantics, the
/// shard-merge contract, the text exports) and the profiling spans.

namespace cvsafe {
namespace {

using obs::Event;
using obs::EpisodeLabel;
using obs::FaultKind;
using obs::GateRejectReason;
using obs::Recorder;

// ---------------------------------------------------------------------------
// Recorder

TEST(Recorder, DisabledByDefaultAndDropsEverything) {
  Recorder rec;
  EXPECT_FALSE(rec.enabled());
  rec.begin_step(3, 0.15);
  rec.step_summary(1.0, false, 0.5, -1);
  rec.fault(FaultKind::kCorrupted, 0.2);
  rec.episode_end(false, true, 0.4, 100);
  EXPECT_TRUE(rec.events().empty());
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(Recorder, RecordingGuardTracksAttachmentAndEnable) {
  EXPECT_FALSE(obs::recording(nullptr));
  Recorder rec;
  EXPECT_FALSE(obs::recording(&rec));
  rec.set_enabled(true);
  EXPECT_EQ(obs::recording(&rec), Recorder::kCompiledIn);
  rec.set_enabled(false);
  EXPECT_FALSE(obs::recording(&rec));
}

TEST(Recorder, StampsStepContextOnEvents) {
  Recorder rec;
  rec.set_enabled(true);
  rec.begin_step(7, 0.35);
  rec.monitor(true, true, -0.01, "front");
  rec.begin_step(8, 0.40);
  rec.ladder("full", "reach-only");
  ASSERT_EQ(rec.events().size(), 2u);
  EXPECT_EQ(rec.events()[0].step, 7u);
  EXPECT_DOUBLE_EQ(rec.events()[0].t, 0.35);
  EXPECT_EQ(rec.events()[1].step, 8u);
  EXPECT_DOUBLE_EQ(rec.events()[1].t, 0.40);
  const auto* mon = std::get_if<obs::MonitorEvent>(&rec.events()[0].payload);
  ASSERT_NE(mon, nullptr);
  EXPECT_TRUE(mon->to_emergency);
  EXPECT_EQ(mon->reason, "front");
  const auto* lad = std::get_if<obs::LadderEvent>(&rec.events()[1].payload);
  ASSERT_NE(lad, nullptr);
  EXPECT_EQ(lad->from, "full");
  EXPECT_EQ(lad->to, "reach-only");
}

TEST(Recorder, OverflowIsCountedNeverSilent) {
  Recorder rec;
  rec.set_enabled(true);
  for (std::size_t i = 0; i < Recorder::kMaxEvents + 5; ++i) {
    rec.fault(FaultKind::kJittered, 0.0);
  }
  EXPECT_EQ(rec.events().size(), Recorder::kMaxEvents);
  EXPECT_EQ(rec.dropped(), 5u);
  rec.clear();
  EXPECT_TRUE(rec.events().empty());
  EXPECT_EQ(rec.dropped(), 0u);
  rec.fault(FaultKind::kJittered, 0.0);
  EXPECT_EQ(rec.events().size(), 1u);
}

// ---------------------------------------------------------------------------
// JSONL serialization

EpisodeLabel label_with(std::string scenario = {}, std::string fault = {}) {
  EpisodeLabel label;
  label.episode = 2;
  label.seed = 42;
  label.scenario = std::move(scenario);
  label.fault = std::move(fault);
  return label;
}

Event at(std::size_t step, double t, obs::EventPayload payload) {
  return Event{step, t, std::move(payload)};
}

TEST(Jsonl, FixedKeyOrderAndOptionalLabels) {
  const Event e = at(5, 0.25, obs::StepEvent{-1.5, true, 0.125, 2});
  EXPECT_EQ(obs::event_jsonl_line(e, label_with()),
            "{\"ep\":2,\"seed\":42,\"step\":5,\"t\":0.25,"
            "\"type\":\"step\",\"accel\":-1.5,\"emergency\":true,"
            "\"margin\":0.125,\"ladder_level\":2}");
  EXPECT_EQ(obs::event_jsonl_line(e, label_with("left-turn", "blackout")),
            "{\"ep\":2,\"seed\":42,\"scenario\":\"left-turn\","
            "\"fault\":\"blackout\",\"step\":5,\"t\":0.25,"
            "\"type\":\"step\",\"accel\":-1.5,\"emergency\":true,"
            "\"margin\":0.125,\"ladder_level\":2}");
}

TEST(Jsonl, EveryPayloadTypeSerializes) {
  const EpisodeLabel label = label_with();
  EXPECT_EQ(
      obs::event_jsonl_line(
          at(0, 0.0, obs::MonitorEvent{true, true, -0.5, "front gap"}),
          label),
      "{\"ep\":2,\"seed\":42,\"step\":0,\"t\":0,\"type\":\"monitor\","
      "\"emergency\":true,\"in_boundary\":true,\"slack\":-0.5,"
      "\"reason\":\"front gap\"}");
  // Dyadic values print in shortest form under %.17g, keeping the
  // expectations literal.
  EXPECT_EQ(obs::event_jsonl_line(
                at(1, 0.0625, obs::LadderEvent{"full", "sensor-only"}),
                label),
            "{\"ep\":2,\"seed\":42,\"step\":1,\"t\":0.0625,"
            "\"type\":\"ladder\",\"from\":\"full\",\"to\":\"sensor-only\"}");
  EXPECT_EQ(obs::event_jsonl_line(
                at(2, 0.25,
                   obs::GateEvent{7, GateRejectReason::kImplausible, 0.125}),
                label),
            "{\"ep\":2,\"seed\":42,\"step\":2,\"t\":0.25,"
            "\"type\":\"gate_reject\",\"sender\":7,"
            "\"reason\":\"implausible\",\"msg_t\":0.125}");
  EXPECT_EQ(obs::event_jsonl_line(at(3, 0.375, obs::RollbackEvent{0.125, 4}),
                                  label),
            "{\"ep\":2,\"seed\":42,\"step\":3,\"t\":0.375,"
            "\"type\":\"kalman_rollback\",\"anchor_t\":0.125,"
            "\"replayed\":4}");
  EXPECT_EQ(obs::event_jsonl_line(
                at(4, 0.5, obs::FaultEvent{FaultKind::kSensorBiased, 0.25}),
                label),
            "{\"ep\":2,\"seed\":42,\"step\":4,\"t\":0.5,"
            "\"type\":\"fault\",\"kind\":\"sensor_biased\",\"value\":0.25}");
  EXPECT_EQ(obs::event_jsonl_line(
                at(6, 0.75, obs::EpisodeEvent{false, true, 0.75, 120}),
                label),
            "{\"ep\":2,\"seed\":42,\"step\":6,\"t\":0.75,"
            "\"type\":\"episode_end\",\"collided\":false,\"reached\":true,"
            "\"eta\":0.75,\"steps\":120}");
}

TEST(Jsonl, DoublesRoundTripAndNonFiniteBecomesNull) {
  std::string out;
  obs::append_json_double(out, 0.1);
  EXPECT_EQ(out, "0.10000000000000001");
  out.clear();
  obs::append_json_double(out, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(out, "null");
  out.clear();
  obs::append_json_double(out, std::numeric_limits<double>::infinity());
  EXPECT_EQ(out, "null");
  // A rejected non-finite payload carries its NaN into the trace line;
  // the line must stay parseable JSON.
  const Event e =
      at(1, 0.0625,
         obs::GateEvent{3, GateRejectReason::kNonFinite,
                        std::numeric_limits<double>::quiet_NaN()});
  EXPECT_EQ(obs::event_jsonl_line(e, label_with()),
            "{\"ep\":2,\"seed\":42,\"step\":1,\"t\":0.0625,"
            "\"type\":\"gate_reject\",\"sender\":3,"
            "\"reason\":\"non_finite\",\"msg_t\":null}");
}

TEST(Jsonl, StringEscaping) {
  std::string out;
  obs::append_json_string(out, "a\"b\\c\nd\te\x01" "f");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
}

TEST(Jsonl, WriteEventsAppendsDroppedMarker) {
  std::ostringstream os;
  std::vector<Event> events;
  events.push_back(at(0, 0.0, obs::FaultEvent{FaultKind::kCorrupted, 1.0}));
  obs::write_events_jsonl(os, events, label_with("left-turn"), 3);
  EXPECT_EQ(os.str(),
            "{\"ep\":2,\"seed\":42,\"scenario\":\"left-turn\","
            "\"step\":0,\"t\":0,\"type\":\"fault\",\"kind\":\"corrupted\","
            "\"value\":1}\n"
            "{\"ep\":2,\"seed\":42,\"scenario\":\"left-turn\","
            "\"type\":\"trace_dropped\",\"count\":3}\n");
  std::ostringstream clean;
  obs::write_events_jsonl(clean, events, label_with("left-turn"), 0);
  EXPECT_EQ(clean.str().find("trace_dropped"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics registry

TEST(Metrics, HistogramBucketsArePerBucketWithInfOverflow) {
  obs::Histogram h({1.0, 2.0, 5.0});
  h.observe(0.5);
  h.observe(1.0);  // a bound belongs to its own bucket (le semantics)
  h.observe(1.5);
  h.observe(4.0);
  h.observe(100.0);  // overflow -> +Inf bucket
  ASSERT_EQ(h.counts().size(), 4u);  // 3 bounds + Inf
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 107.0);
}

TEST(Metrics, MergeAddsCountersAndHistogramsOverwritesGauges) {
  obs::MetricsRegistry a;
  a.counter("episodes").inc(3);
  a.gauge("min_eta").set(0.2);
  a.histogram("eta", {0.0, 1.0}).observe(0.5);

  obs::MetricsRegistry b;
  b.counter("episodes").inc(4);
  b.counter("only_in_b").inc();
  b.gauge("min_eta").set(-0.1);
  b.histogram("eta", {0.0, 1.0}).observe(-0.5);

  a.merge(b);
  EXPECT_EQ(a.counters().at("episodes").value(), 7u);
  EXPECT_EQ(a.counters().at("only_in_b").value(), 1u);
  EXPECT_DOUBLE_EQ(a.gauges().at("min_eta").value(), -0.1);
  const obs::Histogram& h = a.histograms().at("eta");
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.counts()[0], 1u);  // -0.5 from b (le="0")
  EXPECT_EQ(h.counts()[1], 1u);  // 0.5 from a (le="1")
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(Metrics, TextExportsAreNameOrderedRegardlessOfInsertion) {
  obs::MetricsRegistry forward;
  forward.counter("a_total").inc(1);
  forward.counter("b_total").inc(2);
  forward.gauge("z_gauge").set(3.5);

  obs::MetricsRegistry reverse;
  reverse.gauge("z_gauge").set(3.5);
  reverse.counter("b_total").inc(2);
  reverse.counter("a_total").inc(1);

  EXPECT_EQ(forward.prometheus_text(), reverse.prometheus_text());
  EXPECT_EQ(forward.csv(), reverse.csv());
}

TEST(Metrics, PrometheusTextShape) {
  obs::MetricsRegistry reg;
  reg.counter("cvsafe_episodes_total{fault=\"blackout\"}").inc(8);
  reg.gauge("cvsafe_min_eta").set(0.25);
  reg.histogram("cvsafe_eta", {0.0, 1.0}).observe(0.5);
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# TYPE cvsafe_episodes_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("cvsafe_episodes_total{fault=\"blackout\"} 8"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE cvsafe_min_eta gauge"), std::string::npos);
  EXPECT_NE(text.find("cvsafe_min_eta 0.25"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cvsafe_eta histogram"), std::string::npos);
  EXPECT_NE(text.find("cvsafe_eta_bucket{le=\"0\"} 0"), std::string::npos);
  EXPECT_NE(text.find("cvsafe_eta_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("cvsafe_eta_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("cvsafe_eta_sum 0.5"), std::string::npos);
  EXPECT_NE(text.find("cvsafe_eta_count 1"), std::string::npos);
}

TEST(Metrics, CsvShape) {
  obs::MetricsRegistry reg;
  reg.counter("hits").inc(2);
  reg.gauge("level").set(1.5);
  reg.histogram("lat", {1.0}).observe(0.5);
  const std::string csv = reg.csv();
  EXPECT_EQ(csv.rfind("kind,name,value\n", 0), 0u);
  EXPECT_NE(csv.find("counter,\"hits\",2"), std::string::npos);
  EXPECT_NE(csv.find("gauge,\"level\",1.5"), std::string::npos);
  EXPECT_NE(csv.find("histogram_bucket,\"lat[le=1]\",1"), std::string::npos);
  EXPECT_NE(csv.find("histogram_bucket,\"lat[le=+Inf]\",1"),
            std::string::npos);
  EXPECT_NE(csv.find("histogram_sum,\"lat\",0.5"), std::string::npos);
  EXPECT_NE(csv.find("histogram_count,\"lat\",1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Profiling spans (process-global singleton: each test resets it)

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Profiler::instance().set_enabled(false);
    obs::Profiler::instance().clear();
  }
  void TearDown() override {
    obs::Profiler::instance().set_enabled(false);
    obs::Profiler::instance().clear();
  }
};

TEST_F(ProfilerTest, DisabledSpansRecordNothing) {
  { CVSAFE_PROFILE_SPAN("test.disabled"); }
  EXPECT_TRUE(obs::Profiler::instance().spans().empty());
}

TEST_F(ProfilerTest, EnabledSpansRecordNameAndDuration) {
  obs::Profiler::instance().set_enabled(true);
  { CVSAFE_PROFILE_SPAN("test.outer"); }
  obs::Profiler::instance().set_enabled(false);
  const auto spans = obs::Profiler::instance().spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "test.outer");
}

TEST_F(ProfilerTest, ChromeTraceJsonShape) {
  auto& profiler = obs::Profiler::instance();
  profiler.record("b_second", 2000, 500);
  profiler.record("a_first", 1000, 250);
  const std::string json = profiler.chrome_trace_json();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Sorted by start time, not recording order.
  EXPECT_LT(json.find("a_first"), json.find("b_second"));
  EXPECT_NE(json.find("\"ts\":1.000,\"dur\":0.250"), std::string::npos);
}

TEST_F(ProfilerTest, OverflowIsCounted) {
  auto& profiler = obs::Profiler::instance();
  for (std::size_t i = 0; i < obs::Profiler::kMaxSpans + 2; ++i) {
    profiler.record("spam", i, 1);
  }
  EXPECT_EQ(profiler.spans().size(), obs::Profiler::kMaxSpans);
  EXPECT_EQ(profiler.dropped(), 2u);
}

}  // namespace
}  // namespace cvsafe
