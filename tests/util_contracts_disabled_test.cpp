// Compiled with -DCVSAFE_NO_CONTRACTS (see tests/CMakeLists.txt): every
// contract macro must expand to a no-op with zero side effects, and
// header-inline contract sites must compile out in this translation unit
// even though the library itself was built with contracts enabled.

#include "cvsafe/util/contracts.hpp"

#include <gtest/gtest.h>

#include "cvsafe/util/interval.hpp"
#include "cvsafe/util/interval_set.hpp"

#ifndef CVSAFE_NO_CONTRACTS
#error "this test must be compiled with -DCVSAFE_NO_CONTRACTS"
#endif

namespace cvsafe::util {
namespace {

TEST(ContractsDisabled, MacrosAreNoOps) {
  ScopedContractMode mode(ContractMode::kThrow);
  EXPECT_NO_THROW(CVSAFE_EXPECTS(false, "compiled out"));
  EXPECT_NO_THROW(CVSAFE_ENSURES(false));
  EXPECT_NO_THROW(CVSAFE_ASSERT(false, "also compiled out"));
}

TEST(ContractsDisabled, ConditionIsNotEvaluated) {
  int evaluations = 0;
  CVSAFE_ASSERT(++evaluations > 0);
  CVSAFE_EXPECTS(++evaluations > 0, "never runs");
  EXPECT_EQ(evaluations, 0);
}

TEST(ContractsDisabled, HeaderInlineContractSitesCompileOut) {
  ScopedContractMode mode(ContractMode::kThrow);
  // These would throw in the enabled build (util_contracts_test.cpp); in
  // this TU the inline definitions carry no checks. The *values* are
  // garbage by design — the point is the absence of a trap.
  const Interval inverted = Interval::centered(0.0, -1.0);
  EXPECT_TRUE(inverted.empty());
  EXPECT_NO_THROW(Interval::empty_interval().mid());
  EXPECT_NO_THROW(Interval::empty_interval().clamp(0.5));
}

}  // namespace
}  // namespace cvsafe::util
