// Equivalence tests for the parallel and memoized boundary-grid sweeps:
// every variant must reproduce the serial compute_boundary_grid labels
// exactly (same label enum value in every cell) on randomized grids,
// including odd sizes and degenerate single-row/column slices.

#include <cstddef>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cvsafe/core/preimage.hpp"
#include "cvsafe/util/rng.hpp"

namespace {

using cvsafe::core::ChangedRegion;
using cvsafe::core::compute_boundary_grid;
using cvsafe::core::compute_boundary_grid_parallel;
using cvsafe::core::IncrementalBoundaryGrid;
using cvsafe::core::PreimageGrid;
using cvsafe::core::PreimageResult;
using cvsafe::core::RegionLabel;

std::pair<double, double> integrator_step(double x, double v, double u) {
  const double dt = 0.1;
  return {x + v * dt + 0.5 * u * dt * dt, v + u * dt};
}

struct Band {
  double lo = 0.4;
  double hi = 0.6;
  bool operator()(double x, double /*v*/) const { return x >= lo && x <= hi; }
};

void expect_same_labels(const PreimageResult& a, const PreimageResult& b,
                        const char* what) {
  ASSERT_EQ(a.labels.size(), b.labels.size()) << what;
  for (std::size_t c = 0; c < a.labels.size(); ++c) {
    ASSERT_EQ(a.labels[c], b.labels[c])
        << what << ": cell " << c << " (" << c % a.grid.nx << ", "
        << c / a.grid.nx << ")";
  }
}

TEST(PreimageParallelTest, MatchesSerialOnRandomizedGrids) {
  cvsafe::util::Rng rng(31);
  for (int trial = 0; trial < 8; ++trial) {
    PreimageGrid grid;
    grid.x_min = rng.uniform(-1.0, 0.0);
    grid.x_max = grid.x_min + rng.uniform(0.5, 2.0);
    grid.v_min = rng.uniform(-1.0, 0.0);
    grid.v_max = grid.v_min + rng.uniform(0.5, 2.0);
    grid.nx = static_cast<std::size_t>(rng.uniform_int(1, 50));
    grid.nv = static_cast<std::size_t>(rng.uniform_int(1, 50));
    const auto controls = cvsafe::core::sample_controls(
        -3.0, 3.0, static_cast<std::size_t>(rng.uniform_int(2, 9)));
    const Band band{grid.x_min + 0.3 * (grid.x_max - grid.x_min),
                    grid.x_min + 0.5 * (grid.x_max - grid.x_min)};

    const auto serial = compute_boundary_grid(grid, integrator_step, band,
                                              controls);
    for (std::size_t threads : {std::size_t{1}, std::size_t{3},
                                std::size_t{8}}) {
      const auto par = compute_boundary_grid_parallel(
          grid, integrator_step, band, controls, threads);
      expect_same_labels(serial, par, "parallel");
    }
  }
}

TEST(PreimageParallelTest, MemoizedFullRelabelMatchesSerial) {
  PreimageGrid grid;
  grid.nx = 37;
  grid.nv = 23;
  const auto controls = cvsafe::core::sample_controls(-3.0, 3.0, 5);
  const Band band;
  const auto serial =
      compute_boundary_grid(grid, integrator_step, band, controls);

  IncrementalBoundaryGrid inc(grid, integrator_step, controls);
  expect_same_labels(serial, inc.relabel(band), "memoized full");
}

TEST(PreimageParallelTest, IncrementalRelabelMatchesFreshSweepAsBandDrifts) {
  PreimageGrid grid;
  grid.nx = 41;
  grid.nv = 29;
  const auto controls = cvsafe::core::sample_controls(-3.0, 3.0, 6);

  IncrementalBoundaryGrid inc(grid, integrator_step, controls);
  Band band;
  inc.relabel(band);  // prime with a full pass

  cvsafe::util::Rng rng(32);
  for (int step = 0; step < 25; ++step) {
    const Band old_band = band;
    band.lo = rng.uniform(0.0, 0.7);
    band.hi = band.lo + rng.uniform(0.05, 0.3);
    const ChangedRegion changed{std::min(old_band.lo, band.lo),
                                std::max(old_band.hi, band.hi), grid.v_min,
                                grid.v_max};
    const auto& got = inc.relabel(band, changed);
    const auto fresh =
        compute_boundary_grid(grid, integrator_step, band, controls);
    expect_same_labels(fresh, got, "incremental");
  }
}

TEST(PreimageParallelTest, IncrementalWithEmptyChangeKeepsLabels) {
  PreimageGrid grid;
  grid.nx = 16;
  grid.nv = 16;
  const auto controls = cvsafe::core::sample_controls(-2.0, 2.0, 4);
  IncrementalBoundaryGrid inc(grid, integrator_step, controls);
  const Band band;
  const auto before = inc.relabel(band);  // copy

  // A changed region entirely outside the slice: nothing may move.
  const ChangedRegion nowhere{5.0, 6.0, 5.0, 6.0};
  expect_same_labels(before, inc.relabel(band, nowhere), "no-op change");
}

}  // namespace
