// Concurrency stress for ThreadPool / parallel_for / run_batch. These
// tests exist primarily to run under the `tsan` and `asan-ubsan` presets
// (docs/STATIC_ANALYSIS.md): they drive the exact submit / wait_idle /
// shutdown interleavings and the parallel batch evaluation that the
// experiment harness relies on, with enough tasks and iterations that a
// racy implementation is flagged deterministically.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <thread>
#include <vector>

#include "cvsafe/eval/batch.hpp"
#include "cvsafe/eval/experiments.hpp"
#include "cvsafe/util/thread_pool.hpp"

namespace cvsafe::util {
namespace {

TEST(ThreadPoolStress, ManyTasksSingleWaiter) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<std::size_t> counter{0};
  constexpr std::size_t kTasks = 2000;
  for (std::size_t i = 0; i < kTasks; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(ThreadPoolStress, RepeatedWaitIdleRounds) {
  ThreadPool pool(3);
  std::atomic<std::size_t> counter{0};
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 40; ++i) {
      pool.submit([&counter] {
        counter.fetch_add(1, std::memory_order_relaxed);
      });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), static_cast<std::size_t>(40 * (round + 1)));
  }
}

TEST(ThreadPoolStress, ConcurrentSubmitters) {
  ThreadPool pool(4);
  std::atomic<std::size_t> counter{0};
  constexpr std::size_t kSubmitters = 6;
  constexpr std::size_t kPerSubmitter = 500;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &counter] {
      for (std::size_t i = 0; i < kPerSubmitter; ++i) {
        pool.submit([&counter] {
          counter.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.wait_idle();
  EXPECT_EQ(counter.load(), kSubmitters * kPerSubmitter);
}

TEST(ThreadPoolStress, DestructorDrainsPendingTasks) {
  std::atomic<std::size_t> counter{0};
  constexpr std::size_t kTasks = 300;
  {
    ThreadPool pool(2);
    for (std::size_t i = 0; i < kTasks; ++i) {
      pool.submit([&counter] {
        counter.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No wait_idle: the destructor must drain the queue before joining.
  }
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(ThreadPoolStress, ParallelForCoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  parallel_for(
      kN, [&hits](std::size_t i) { hits[i].fetch_add(1); }, 4);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolStress, NestedParallelForFromPoolTasks) {
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  for (int outer = 0; outer < 8; ++outer) {
    pool.submit([&total] {
      parallel_for(
          64, [&total](std::size_t) { total.fetch_add(1); }, 2);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(total.load(), 8u * 64u);
}

// The batch runner is the production consumer of parallel_for: every
// episode writes a distinct results slot while sharing the blueprint and
// config read-only. Parallel execution must be bit-identical to serial
// (each episode owns a PRNG stream seeded by its index).
TEST(BatchStress, ParallelMatchesSerialBitExact) {
  eval::SimConfig config = eval::SimConfig::paper_defaults();
  config.horizon = 10.0;
  eval::AgentBlueprint bp;
  bp.name = "expert";
  bp.scenario = config.make_scenario();
  bp.net = nullptr;
  bp.sensor = config.sensor;
  eval::AgentConfig ac = eval::AgentConfig::basic_compound();
  ac.use_expert_planner = true;
  bp.config = ac;

  const auto serial = eval::run_batch(config, bp, 24, /*base_seed=*/7,
                                      /*threads=*/1);
  const auto parallel = eval::run_batch(config, bp, 24, /*base_seed=*/7,
                                        /*threads=*/4);
  EXPECT_EQ(serial.n, parallel.n);
  EXPECT_EQ(serial.safe_count, parallel.safe_count);
  EXPECT_EQ(serial.reached_count, parallel.reached_count);
  EXPECT_EQ(serial.total_steps, parallel.total_steps);
  EXPECT_EQ(serial.emergency_steps, parallel.emergency_steps);
  ASSERT_EQ(serial.etas.size(), parallel.etas.size());
  for (std::size_t i = 0; i < serial.etas.size(); ++i) {
    ASSERT_EQ(serial.etas[i], parallel.etas[i]) << "episode " << i;
  }
}

TEST(BatchStress, ConcurrentIndependentBatches) {
  eval::SimConfig config = eval::SimConfig::paper_defaults();
  config.horizon = 8.0;
  eval::AgentBlueprint bp;
  bp.name = "expert";
  bp.scenario = config.make_scenario();
  bp.net = nullptr;
  bp.sensor = config.sensor;
  eval::AgentConfig ac = eval::AgentConfig::basic_compound();
  ac.use_expert_planner = true;
  bp.config = ac;

  std::vector<eval::BatchStats> stats(3);
  std::vector<std::thread> runners;
  runners.reserve(stats.size());
  for (std::size_t r = 0; r < stats.size(); ++r) {
    runners.emplace_back([&config, &bp, &stats, r] {
      stats[r] = eval::run_batch(config, bp, 8, /*base_seed=*/1, /*threads=*/2);
    });
  }
  for (auto& t : runners) t.join();
  for (std::size_t r = 1; r < stats.size(); ++r) {
    EXPECT_EQ(stats[0].safe_count, stats[r].safe_count);
    EXPECT_EQ(stats[0].total_steps, stats[r].total_steps);
    EXPECT_EQ(stats[0].etas, stats[r].etas);
  }
}

}  // namespace
}  // namespace cvsafe::util
