// The safety backbone of the framework (Section III-E):
//  * Eq. 4 — from any boundary-safe state, one emergency step stays safe;
//  * the closed-form X_b margin of Section IV over-approximates the
//    one-step slack loss;
//  * the SafetyModel adapter and the aggressive shrink.

#include <gtest/gtest.h>

#include "cvsafe/scenario/safety_model.hpp"
#include "cvsafe/util/rng.hpp"
#include "cvsafe/vehicle/dynamics.hpp"

namespace cvsafe::scenario {
namespace {

const vehicle::VehicleLimits kEgo{0.0, 15.0, -6.0, 3.0};
const vehicle::VehicleLimits kC1{2.0, 15.0, -3.0, 3.0};
constexpr double kDt = 0.05;

std::shared_ptr<const LeftTurnScenario> make_scenario() {
  return std::make_shared<const LeftTurnScenario>(LeftTurnGeometry{}, kEgo,
                                                  kC1, kDt);
}

filter::StateEstimate exact_estimate(double t, double p, double v,
                                     double a = 0.0) {
  filter::StateEstimate est;
  est.t = t;
  est.p = util::Interval::point(p);
  est.v = util::Interval::point(v);
  est.p_hat = p;
  est.v_hat = v;
  est.a_hat = a;
  est.valid = true;
  return est;
}

// Eq. 4 swept over a dense grid of boundary states before the zone:
// applying kappa_e for one control step never lands in the unsafe set,
// even against a permanent conflict window (the window only gates whether
// emergency triggers, not whether braking succeeds).
TEST(EmergencyEq4, OneStepFromBoundaryStaysSafe) {
  const auto scn = make_scenario();
  const vehicle::DoubleIntegrator dyn(kEgo);
  const util::Interval always{0.0, 1e9};  // permanent conflict

  for (double p0 = -30.0; p0 <= scn->geometry().ego_front; p0 += 0.05) {
    for (double v0 = 0.0; v0 <= 15.0; v0 += 0.25) {
      if (scn->slack(p0, v0) < 0.0) continue;  // committed states: below
      if (!scn->in_boundary_safe_set(0.0, p0, v0, always)) continue;
      const double a_e = scn->emergency_accel(0.0, p0, v0, always);
      const auto next = dyn.step({p0, v0}, a_e, kDt);
      EXPECT_FALSE(scn->in_unsafe_set(kDt, next.p, next.v, always))
          << "p0=" << p0 << " v0=" << v0 << " a_e=" << a_e
          << " -> p=" << next.p << " v=" << next.v;
    }
  }
}

// Eq. 4 for the inside-zone completion: from any *reachable* boundary
// state inside the zone (not currently unsafe, i.e. the ego would clear
// before the window opens), the full-throttle escape keeps it that way.
TEST(EmergencyEq4, InsideZoneEscapeStaysSafe) {
  const auto scn = make_scenario();
  const vehicle::DoubleIntegrator dyn(kEgo);
  util::Rng rng(7);
  int tested = 0;
  for (int trial = 0; trial < 50000 && tested < 2000; ++trial) {
    const double p0 =
        rng.uniform(scn->geometry().ego_front + 0.01,
                    scn->geometry().ego_back - 0.01);
    const double v0 = rng.uniform(0.5, 15.0);
    const util::Interval tau1{rng.uniform(0.0, 8.0), rng.uniform(0.0, 16.0)};
    if (tau1.empty()) continue;
    if (scn->in_unsafe_set(0.0, p0, v0, tau1)) continue;   // doomed already
    if (!scn->in_boundary_safe_set(0.0, p0, v0, tau1)) continue;
    ++tested;
    const double a_e = scn->emergency_accel(0.0, p0, v0, tau1);
    EXPECT_EQ(a_e, kEgo.a_max);
    const auto next = dyn.step({p0, v0}, a_e, kDt);
    EXPECT_FALSE(scn->in_unsafe_set(kDt, next.p, next.v, tau1))
        << "p0=" << p0 << " v0=" << v0 << " tau1=[" << tau1.lo << ","
        << tau1.hi << "]";
  }
  EXPECT_GT(tested, 100);
}

// Stronger: from any boundary state before the zone, *sustained* emergency
// control keeps the vehicle out of the zone forever.
TEST(EmergencyEq4, SustainedEmergencyNeverEntersZone) {
  const auto scn = make_scenario();
  const vehicle::DoubleIntegrator dyn(kEgo);
  const util::Interval always{0.0, 1e9};
  util::Rng rng(3);
  for (int trial = 0; trial < 2000; ++trial) {
    double p0 = rng.uniform(-30.0, 5.0);
    double v0 = rng.uniform(0.0, 15.0);
    if (scn->slack(p0, v0) < 0.0) continue;  // committed: entry legitimate
    if (!scn->in_boundary_safe_set(0.0, p0, v0, always)) continue;
    for (int step = 0; step < 400; ++step) {
      const auto next = dyn.step(
          {p0, v0}, scn->emergency_accel(step * kDt, p0, v0, always), kDt);
      p0 = next.p;
      v0 = next.v;
      ASSERT_LE(p0, scn->geometry().ego_front + 1e-6)
          << "entered the zone under sustained emergency control";
    }
  }
}

// The closed-form margin of Section IV: one step of ANY feasible control
// from a non-boundary safe state (s >= margin) cannot make the slack
// negative.
TEST(BoundaryMargin, OverApproximatesOneStepSlackLoss) {
  const auto scn = make_scenario();
  const vehicle::DoubleIntegrator dyn(kEgo);
  util::Rng rng(5);
  for (int trial = 0; trial < 20000; ++trial) {
    const double p0 = rng.uniform(-30.0, 5.0);
    const double v0 = rng.uniform(0.0, 15.0);
    const double s = scn->slack(p0, v0);
    const double margin = (v0 * kDt + 0.5 * kEgo.a_max * kDt * kDt) *
                          (1.0 - kEgo.a_max / kEgo.a_min);
    if (s < margin) continue;  // boundary or unsafe-slack state
    const double a = rng.uniform(kEgo.a_min, kEgo.a_max);
    const auto next = dyn.step({p0, v0}, a, kDt);
    EXPECT_GE(scn->slack(next.p, next.v), -1e-9)
        << "p0=" << p0 << " v0=" << v0 << " a=" << a;
  }
}

TEST(SafetyModel, DelegatesToScenario) {
  const auto scn = make_scenario();
  const LeftTurnSafetyModel model(scn);

  LeftTurnWorld world;
  world.t = 0.0;
  world.ego = {0.0, 12.0};  // negative slack at v=12
  world.tau1_monitor = util::Interval{0.3, 2.0};
  EXPECT_EQ(model.in_unsafe_set(world),
            scn->in_unsafe_set(0.0, 0.0, 12.0, world.tau1_monitor));
  EXPECT_EQ(model.in_boundary_safe_set(world),
            scn->in_boundary_safe_set(0.0, 0.0, 12.0, world.tau1_monitor));
  EXPECT_EQ(model.emergency_accel(world),
            scn->emergency_accel(0.0, 0.0, 12.0, world.tau1_monitor));
}

TEST(SafetyModel, ShrinkReplacesNnWindowOnly) {
  const auto scn = make_scenario();
  const LeftTurnSafetyModel model(scn, AggressiveBuffers{0.5, 1.0});

  LeftTurnWorld world;
  world.t = 0.0;
  world.ego = {-20.0, 8.0};
  world.c1_nn = exact_estimate(0.0, -50.0, 10.0, 0.0);
  world.tau1_monitor = scn->c1_window_conservative(world.c1_nn);
  world.tau1_nn = world.tau1_monitor;

  const LeftTurnWorld shrunk = model.shrink_for_planner(world);
  // Monitor window untouched; NN window replaced by the aggressive one.
  EXPECT_EQ(shrunk.tau1_monitor, world.tau1_monitor);
  EXPECT_LT(shrunk.tau1_nn.width(), world.tau1_nn.width());
  EXPECT_TRUE(world.tau1_nn.inflated(1e-9).contains(shrunk.tau1_nn));
}

// The monitor boundary test catches fast approaches but leaves plenty of
// room for normal driving: far away with moderate speed is never boundary.
TEST(BoundarySet, FarAwayIsNotBoundary) {
  const auto scn = make_scenario();
  const util::Interval tau1{2.0, 6.0};
  EXPECT_FALSE(scn->in_boundary_safe_set(0.0, -30.0, 8.0, tau1));
}

TEST(BoundarySet, TriggersJustBeforeSlackTurnsNegative) {
  const auto scn = make_scenario();
  const util::Interval always{0.0, 1e9};
  const double v0 = 12.0;
  const double d_b = v0 * v0 / 12.0;  // 12 m
  // s = 5 - 12 - p0: slack hits 0 at p0 = -7.
  EXPECT_TRUE(scn->in_boundary_safe_set(0.0, -7.0, v0, always));
  EXPECT_FALSE(scn->in_boundary_safe_set(0.0, -8.0, v0, always));
  (void)d_b;
}

TEST(BoundarySet, InsideZoneBrakeRiskTriggers) {
  const auto scn = make_scenario();
  // Ego slowly crossing the zone while the oncoming window is imminent:
  // braking could stretch the occupancy into the window.
  EXPECT_TRUE(
      scn->in_boundary_safe_set(0.0, 10.0, 2.0, util::Interval{1.0, 5.0}));
  // Fast crossing with the window far away: safe.
  EXPECT_FALSE(
      scn->in_boundary_safe_set(0.0, 14.5, 15.0, util::Interval{8.0, 9.0}));
}

}  // namespace
}  // namespace cvsafe::scenario
