#include "cvsafe/scenario/multi_vehicle.hpp"

#include <gtest/gtest.h>

#include "cvsafe/eval/multi_simulation.hpp"
#include "cvsafe/planners/expert.hpp"

namespace cvsafe::scenario {
namespace {

const vehicle::VehicleLimits kEgo{0.0, 15.0, -6.0, 3.0};
const vehicle::VehicleLimits kC1{2.0, 15.0, -3.0, 3.0};

std::shared_ptr<const LeftTurnScenario> base_scenario() {
  return std::make_shared<const LeftTurnScenario>(LeftTurnGeometry{}, kEgo,
                                                  kC1, 0.05);
}

filter::StateEstimate exact(double t, double p, double v, double a = 0.0) {
  filter::StateEstimate est;
  est.t = t;
  est.p = util::Interval::point(p);
  est.v = util::Interval::point(v);
  est.p_hat = p;
  est.v_hat = v;
  est.a_hat = a;
  est.valid = true;
  return est;
}

TEST(MultiVehicle, WindowsAreUnionOfPerVehicleWindows) {
  const MultiVehicleLeftTurn math(base_scenario());
  const std::vector<filter::StateEstimate> cars{
      exact(0.0, -50.0, 10.0), exact(0.0, -90.0, 10.0)};
  const auto tau = math.conservative_windows(cars);
  const auto w0 = math.base().c1_window_conservative(cars[0]);
  const auto w1 = math.base().c1_window_conservative(cars[1]);
  EXPECT_TRUE(tau.intersects(w0));
  EXPECT_TRUE(tau.intersects(w1));
  EXPECT_NEAR(tau.hull().lo, std::min(w0.lo, w1.lo), 1e-12);
  EXPECT_NEAR(tau.hull().hi, std::max(w0.hi, w1.hi), 1e-12);
}

TEST(MultiVehicle, SingleVehicleMatchesScalarScenario) {
  const auto base = base_scenario();
  const MultiVehicleLeftTurn math(base);
  const std::vector<filter::StateEstimate> one{exact(0.0, -50.0, 10.0)};
  const auto tau = math.conservative_windows(one);
  const auto scalar = base->c1_window_conservative(one[0]);
  ASSERT_EQ(tau.size(), 1u);
  EXPECT_EQ(tau[0], scalar);

  // Unsafe-set membership agrees with the scalar implementation.
  for (double p0 : {-20.0, -5.0, 0.0, 8.0}) {
    for (double v0 : {4.0, 10.0, 14.0}) {
      EXPECT_EQ(math.in_unsafe_set(0.0, p0, v0, tau),
                base->in_unsafe_set(0.0, p0, v0, scalar))
          << "p0=" << p0 << " v0=" << v0;
    }
  }
}

TEST(MultiVehicle, ResolvableAgainstUnion) {
  const MultiVehicleLeftTurn math(base_scenario());
  // Two windows: [5,7] and [10,12]. Fast ego clears before the first.
  const util::IntervalSet tau{{5.0, 7.0}, {10.0, 12.0}};
  EXPECT_TRUE(math.resolvable(0.0, 0.0, 14.0, tau));
  // Slow ego far away can delay past the last window (max brake stops it).
  EXPECT_TRUE(math.resolvable(0.0, -30.0, 3.0, tau));
  // Conservative: passing between the windows is NOT credited — an ego
  // that can only cross during the gap is reported unresolvable.
  // (crossing takes ~3 s from -10 at v=4 under full throttle)
  EXPECT_FALSE(math.resolvable(0.0, -0.5, 9.0, util::IntervalSet{
                                                    {0.5, 2.0}, {2.5, 30.0}}));
}

TEST(MultiVehicle, EmptyOrPassedWindowsAreSafe) {
  const MultiVehicleLeftTurn math(base_scenario());
  EXPECT_FALSE(math.in_boundary_safe_set(0.0, 0.0, 12.0, {}));
  const util::IntervalSet past{{0.5, 2.0}};
  EXPECT_FALSE(math.in_boundary_safe_set(5.0, 0.0, 12.0, past));
  EXPECT_TRUE(math.resolvable(5.0, 0.0, 12.0, past));
}

TEST(MultiVehicle, EmergencyMatchesScalarBeforeCommitment) {
  const auto base = base_scenario();
  const MultiVehicleLeftTurn math(base);
  const util::IntervalSet tau{{2.0, 6.0}};
  EXPECT_EQ(math.emergency_accel(0.0, -5.0, 6.0, tau),
            base->emergency_accel(0.0, -5.0, 6.0, util::Interval{2.0, 6.0}));
  EXPECT_EQ(math.emergency_accel(0.0, 8.0, 6.0, tau), kEgo.a_max);
}

TEST(FirstConflictAdapter, ShowsNearestUpcomingWindow) {
  const auto base = base_scenario();
  class Probe final : public core::PlannerBase<LeftTurnWorld> {
   public:
    double plan(const LeftTurnWorld& world) override {
      last = world.tau1_nn;
      return 0.0;
    }
    std::string_view name() const override { return "probe"; }
    util::Interval last;
  };
  auto probe = std::make_shared<Probe>();
  FirstConflictAdapter adapter(probe);

  LeftTurnMultiWorld world;
  world.t = 8.0;
  world.ego = {0.0, 5.0};
  world.tau_nn = util::IntervalSet{{2.0, 4.0}, {10.0, 12.0}};
  adapter.plan(world);
  // The [2,4] window has passed; the nearest upcoming one is [10,12].
  EXPECT_EQ(probe->last, (util::Interval{10.0, 12.0}));

  world.tau_nn = util::IntervalSet{};
  adapter.plan(world);
  EXPECT_TRUE(probe->last.empty());
}

// End-to-end safety: the compound planner never collides with ANY vehicle
// of the platoon, across disturbance settings and platoon sizes.
class MultiVehicleSafety
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(MultiVehicleSafety, NeverCollides) {
  const auto [num_oncoming, drop_prob] = GetParam();
  eval::SimConfig config = eval::SimConfig::paper_defaults();
  config.horizon = 40.0;
  config.comm = comm::CommConfig::delayed(drop_prob, 0.25);

  eval::MultiVehicleConfig multi;
  multi.num_oncoming = num_oncoming;

  eval::MultiAgentSetup setup;
  setup.scenario = config.make_scenario();
  setup.net = nullptr;  // reckless analytic expert
  setup.expert_params = planners::ExpertParams::aggressive();

  std::size_t reached = 0;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const auto r =
        eval::run_multi_left_turn_simulation(config, multi, setup, seed);
    ASSERT_FALSE(r.collided) << "seed " << seed;
    reached += r.reached ? 1 : 0;
  }
  // Liveness: the platoon eventually passes; most episodes reach.
  EXPECT_GT(reached, 40u);
}

INSTANTIATE_TEST_SUITE_P(
    PlatoonsAndDrops, MultiVehicleSafety,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{4}),
                       ::testing::Values(0.0, 0.6)));

}  // namespace
}  // namespace cvsafe::scenario
