#include "cvsafe/util/interval_set.hpp"

#include <gtest/gtest.h>

#include "cvsafe/util/rng.hpp"

namespace cvsafe::util {
namespace {

TEST(IntervalSet, EmptyDefaults) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.measure(), 0.0);
  EXPECT_FALSE(s.contains(0.0));
  EXPECT_TRUE(s.hull().empty());
}

TEST(IntervalSet, SingletonDropsEmpty) {
  IntervalSet s(Interval::empty_interval());
  EXPECT_TRUE(s.empty());
  IntervalSet p(Interval{1.0, 2.0});
  EXPECT_EQ(p.size(), 1u);
}

TEST(IntervalSet, NormalizationMergesOverlapsAndTouching) {
  IntervalSet s{{0.0, 2.0}, {1.0, 3.0}, {3.0, 4.0}, {6.0, 7.0}};
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], (Interval{0.0, 4.0}));
  EXPECT_EQ(s[1], (Interval{6.0, 7.0}));
  EXPECT_NEAR(s.measure(), 5.0, 1e-12);
}

TEST(IntervalSet, InsertKeepsNormalForm) {
  IntervalSet s{{0.0, 1.0}, {4.0, 5.0}};
  s.insert(Interval{0.5, 4.2});  // bridges both parts
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0], (Interval{0.0, 5.0}));
  s.insert(Interval::empty_interval());
  EXPECT_EQ(s.size(), 1u);
}

TEST(IntervalSet, ContainsAndIntersects) {
  const IntervalSet s{{0.0, 1.0}, {3.0, 4.0}};
  EXPECT_TRUE(s.contains(0.5));
  EXPECT_TRUE(s.contains(3.0));
  EXPECT_FALSE(s.contains(2.0));
  EXPECT_TRUE(s.intersects(Interval{0.9, 1.5}));
  EXPECT_TRUE(s.intersects(Interval{1.5, 3.0}));  // touches second part
  EXPECT_FALSE(s.intersects(Interval{1.5, 2.5}));
  EXPECT_FALSE(s.intersects(Interval::empty_interval()));
}

TEST(IntervalSet, MinMaxHull) {
  const IntervalSet s{{3.0, 4.0}, {0.0, 1.0}};
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 4.0);
  EXPECT_EQ(s.hull(), (Interval{0.0, 4.0}));
}

TEST(IntervalSet, Unite) {
  const IntervalSet a{{0.0, 1.0}};
  const IntervalSet b{{0.5, 2.0}, {5.0, 6.0}};
  const IntervalSet u = a.unite(b);
  ASSERT_EQ(u.size(), 2u);
  EXPECT_EQ(u[0], (Interval{0.0, 2.0}));
  EXPECT_EQ(u[1], (Interval{5.0, 6.0}));
}

TEST(IntervalSet, IntersectWithInterval) {
  const IntervalSet s{{0.0, 2.0}, {4.0, 6.0}};
  const IntervalSet r = s.intersect(Interval{1.0, 5.0});
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], (Interval{1.0, 2.0}));
  EXPECT_EQ(r[1], (Interval{4.0, 5.0}));
  EXPECT_TRUE(s.intersect(Interval{2.5, 3.5}).empty());
}

TEST(IntervalSet, After) {
  const IntervalSet s{{0.0, 2.0}, {4.0, 6.0}};
  const IntervalSet a = s.after(1.0);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0], (Interval{1.0, 2.0}));
  const IntervalSet b = s.after(3.0);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0], (Interval{4.0, 6.0}));
  EXPECT_TRUE(s.after(7.0).empty());
}

TEST(IntervalSet, FirstPointAfter) {
  const IntervalSet s{{0.0, 2.0}, {4.0, 6.0}};
  EXPECT_EQ(s.first_point_after(-1.0).value(), 0.0);
  EXPECT_EQ(s.first_point_after(1.0).value(), 1.0);
  EXPECT_EQ(s.first_point_after(3.0).value(), 4.0);
  EXPECT_FALSE(s.first_point_after(6.5).has_value());
}

// Degenerate inputs guarded by the contracts layer: empty operands and
// point (zero-width) intervals must flow through every operation without
// tripping an invariant or producing de-normalized sets.
TEST(IntervalSetDegenerate, EmptyJoinAndIntersect) {
  const IntervalSet empty;
  const IntervalSet s{{0.0, 1.0}, {3.0, 4.0}};
  EXPECT_EQ(empty.unite(empty), IntervalSet{});
  EXPECT_EQ(empty.unite(s), s);
  EXPECT_EQ(s.unite(empty), s);
  EXPECT_TRUE(empty.intersect(Interval{0.0, 10.0}).empty());
  EXPECT_TRUE(s.intersect(Interval::empty_interval()).empty());
  EXPECT_TRUE(empty.after(0.0).empty());
  EXPECT_FALSE(empty.first_point_after(0.0).has_value());
  EXPECT_FALSE(empty.intersects(Interval{0.0, 1.0}));
}

TEST(IntervalSetDegenerate, PointIntervals) {
  IntervalSet s;
  s.insert(Interval::point(2.0));
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.measure(), 0.0);
  EXPECT_TRUE(s.contains(2.0));
  EXPECT_FALSE(s.contains(2.0 + 1e-12));
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 2.0);

  // A point touching a closed end merges rather than duplicating.
  s.insert(Interval{2.0, 3.0});
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0], (Interval{2.0, 3.0}));

  // A disjoint point stays its own part and participates in queries.
  s.insert(Interval::point(5.0));
  ASSERT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.intersects(Interval{4.5, 5.5}));
  EXPECT_EQ(s.first_point_after(4.0).value(), 5.0);
  const IntervalSet clipped = s.intersect(Interval{5.0, 9.0});
  ASSERT_EQ(clipped.size(), 1u);
  EXPECT_EQ(clipped[0], Interval::point(5.0));
}

TEST(IntervalSetDegenerate, PointOnlySetsNormalize) {
  const IntervalSet s{Interval::point(1.0), Interval::point(1.0),
                      Interval::point(0.0)};
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], Interval::point(0.0));
  EXPECT_EQ(s[1], Interval::point(1.0));
  EXPECT_EQ(s.hull(), (Interval{0.0, 1.0}));
  EXPECT_EQ(s.measure(), 0.0);
}

// Property: membership in the union equals membership in some operand.
TEST(IntervalSetProperty, UnionMembership) {
  Rng rng(1);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<Interval> parts;
    IntervalSet s;
    for (int i = 0; i < 5; ++i) {
      const double lo = rng.uniform(-10, 10);
      const Interval iv{lo, lo + rng.uniform(0.0, 3.0)};
      parts.push_back(iv);
      s.insert(iv);
    }
    for (int q = 0; q < 20; ++q) {
      const double x = rng.uniform(-11, 14);
      bool any = false;
      for (const auto& iv : parts) any = any || iv.contains(x);
      ASSERT_EQ(s.contains(x), any) << "x=" << x;
    }
    // Normal form: sorted and strictly disjoint.
    for (std::size_t i = 1; i < s.size(); ++i) {
      ASSERT_GT(s[i].lo, s[i - 1].hi);
    }
  }
}

// Property: measure is monotone under union and bounded by the hull.
TEST(IntervalSetProperty, MeasureMonotone) {
  Rng rng(2);
  for (int trial = 0; trial < 300; ++trial) {
    IntervalSet s;
    double prev = 0.0;
    for (int i = 0; i < 6; ++i) {
      const double lo = rng.uniform(-10, 10);
      s.insert(Interval{lo, lo + rng.uniform(0.0, 4.0)});
      ASSERT_GE(s.measure(), prev - 1e-12);
      prev = s.measure();
      ASSERT_LE(s.measure(), s.hull().width() + 1e-12);
    }
  }
}

}  // namespace
}  // namespace cvsafe::util
