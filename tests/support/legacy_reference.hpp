#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "cvsafe/core/compound_planner.hpp"
#include "cvsafe/core/evaluation.hpp"
#include "cvsafe/filter/info_filter.hpp"
#include "cvsafe/filter/naive.hpp"
#include "cvsafe/planners/ensemble.hpp"
#include "cvsafe/planners/expert.hpp"
#include "cvsafe/planners/nn_planner.hpp"
#include "cvsafe/scenario/multi_vehicle.hpp"
#include "cvsafe/scenario/safety_model.hpp"
#include "cvsafe/sim/intersection.hpp"
#include "cvsafe/sim/lane_change.hpp"
#include "cvsafe/sim/left_turn.hpp"
#include "cvsafe/sim/multi_vehicle.hpp"
#include "cvsafe/util/kinematics.hpp"
#include "cvsafe/util/rng.hpp"
#include "cvsafe/vehicle/accel_profile.hpp"
#include "cvsafe/vehicle/dynamics.hpp"

/// \file legacy_reference.hpp
/// FROZEN copies of the four hand-rolled per-scenario simulation loops
/// that predate the generic sim::Engine, kept verbatim (including their
/// file-local planner/estimator assembly) as the reference side of the
/// trace-equivalence tests. These implementations are intentionally
/// independent of the engine: they assemble their own control stacks and
/// sequence their own per-step loops, so a test asserting bit-identical
/// outcomes against the engine pins the refactor.
///
/// Do not "clean up" or re-route this file through sim::Engine — its
/// value is precisely that it does not share the code under test.

namespace cvsafe::legacy_ref {

/// Episode outcome mirrored from the pre-engine result structs.
struct LegacyResult {
  bool collided = false;
  bool reached = false;
  double reach_time = 0.0;
  double eta = 0.0;
  std::size_t steps = 0;
  std::size_t emergency_steps = 0;
};

/// Per-step recording mirrored from the pre-engine SimTrace.
struct LegacyTrace {
  std::vector<double> accel_commands;
  std::vector<bool> emergency_flags;
  std::vector<double> tau1_lo, tau1_hi;
  std::vector<double> ego_p, c1_p;
  std::vector<core::SwitchEvent> switches;
};

// ---------------------------------------------------------------------------
// Left turn (frozen copy of src/eval/agent.cpp + simulation.cpp)
// ---------------------------------------------------------------------------

/// Frozen copy of the pre-engine LeftTurnAgent assembly.
class LegacyLeftTurnAgent {
 public:
  LegacyLeftTurnAgent(const sim::AgentBlueprint& blueprint) {
    scenario_ = blueprint.scenario;
    config_ = blueprint.config;
    std::shared_ptr<core::PlannerBase<scenario::LeftTurnWorld>> inner;
    if (!blueprint.ensemble.empty()) {
      inner = std::make_shared<planners::EnsemblePlanner>(
          blueprint.ensemble, planners::InputEncoding{}, "ensemble",
          config_.ensemble_sigma_penalty);
    } else if (config_.use_expert_planner) {
      inner = std::make_shared<planners::ExpertPlanner>(
          scenario_, config_.expert_params, "expert");
    } else {
      assert(blueprint.net != nullptr);
      inner = std::make_shared<planners::NnPlanner>(
          blueprint.net, planners::InputEncoding{}, "nn");
    }

    const auto& c1_limits = scenario_->oncoming_limits();
    if (config_.use_info_filter) {
      nn_estimator_ = std::make_unique<filter::InformationFilter>(
          c1_limits, blueprint.sensor, filter::InfoFilterOptions::ultimate());
    } else {
      nn_estimator_ = std::make_unique<filter::NaiveExtrapolator>(
          blueprint.sensor.delta_p, blueprint.sensor.delta_v);
    }
    if (config_.use_compound) {
      monitor_estimator_ = std::make_unique<filter::InformationFilter>(
          c1_limits, blueprint.sensor, filter::InfoFilterOptions::basic());
      auto model = std::make_shared<scenario::LeftTurnSafetyModel>(
          scenario_, config_.buffers);
      auto compound =
          std::make_shared<core::CompoundPlanner<scenario::LeftTurnWorld>>(
              std::move(inner), std::move(model),
              core::CompoundOptions{config_.use_aggressive});
      compound_ = compound.get();
      planner_ = std::move(compound);
    } else {
      planner_ = std::move(inner);
    }
  }

  void observe_sensor(const sensing::SensorReading& reading) {
    nn_estimator_->on_sensor(reading);
    if (monitor_estimator_) monitor_estimator_->on_sensor(reading);
  }

  void observe_message(const comm::Message& msg) {
    nn_estimator_->on_message(msg);
    if (monitor_estimator_) monitor_estimator_->on_message(msg);
  }

  double act(double t, const vehicle::VehicleState& ego) {
    scenario::LeftTurnWorld world;
    world.t = t;
    world.ego = ego;
    world.c1_nn = nn_estimator_->estimate(t);
    world.tau1_nn = scenario_->c1_window_conservative(world.c1_nn);
    if (monitor_estimator_) {
      world.c1_monitor = monitor_estimator_->estimate(t);
      world.tau1_monitor =
          scenario_->c1_window_conservative(world.c1_monitor);
    }
    last_world_ = world;
    return planner_->plan(world);
  }

  bool last_was_emergency() const {
    return compound_ != nullptr && compound_->last_was_emergency();
  }
  std::vector<core::SwitchEvent> switch_events() const {
    return compound_ != nullptr ? compound_->switch_events()
                                : std::vector<core::SwitchEvent>{};
  }
  const scenario::LeftTurnWorld& last_world() const { return last_world_; }

 private:
  std::shared_ptr<const scenario::LeftTurnScenario> scenario_;
  sim::AgentConfig config_;
  std::unique_ptr<filter::Estimator> nn_estimator_;
  std::unique_ptr<filter::Estimator> monitor_estimator_;
  std::shared_ptr<core::PlannerBase<scenario::LeftTurnWorld>> planner_;
  core::CompoundPlanner<scenario::LeftTurnWorld>* compound_ = nullptr;
  scenario::LeftTurnWorld last_world_;
};

inline LegacyResult run_left_turn(const sim::LeftTurnSimConfig& config,
                                  const sim::AgentBlueprint& blueprint,
                                  std::uint64_t seed,
                                  LegacyTrace* trace = nullptr) {
  assert(blueprint.scenario != nullptr);
  const auto& scn = *blueprint.scenario;
  util::Rng rng(seed);

  const auto& wl = config.workload;
  assert(!wl.p1_grid.empty());
  const auto grid_idx = static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(wl.p1_grid.size()) - 1));
  const double u1_start =
      scenario::LeftTurnGeometry::oncoming_to_frame(wl.p1_grid[grid_idx]);
  const double v1_start = rng.uniform(wl.v1_init_min, wl.v1_init_max);

  const auto total_steps =
      static_cast<std::size_t>(std::ceil(config.horizon / config.dt_c));
  const vehicle::AccelProfile profile = vehicle::AccelProfile::random(
      total_steps, config.dt_c, v1_start, config.c1_limits, wl.profile, rng);

  vehicle::DoubleIntegrator ego_dyn(config.ego_limits);
  vehicle::DoubleIntegrator c1_dyn(config.c1_limits);
  vehicle::VehicleState ego{config.geometry.ego_start, config.ego_v0};
  vehicle::VehicleState c1{u1_start, v1_start};

  comm::Channel channel(config.comm);
  sensing::Sensor sensor(config.sensor);
  LegacyLeftTurnAgent agent(blueprint);

  LegacyResult result;
  for (std::size_t step = 0; step < total_steps; ++step) {
    const double t = static_cast<double>(step) * config.dt_c;
    const double a1 = profile.at(step);

    const vehicle::VehicleSnapshot c1_snapshot{t, c1, a1};
    channel.offer(comm::Message{1, c1_snapshot}, rng);
    for (const auto& msg : channel.collect(t)) agent.observe_message(msg);
    if (const auto reading = sensor.sense(c1_snapshot, rng)) {
      agent.observe_sensor(*reading);
    }

    const double a0 = agent.act(t, ego);
    ++result.steps;
    if (agent.last_was_emergency()) ++result.emergency_steps;

    if (trace != nullptr) {
      trace->accel_commands.push_back(a0);
      trace->emergency_flags.push_back(agent.last_was_emergency());
      trace->ego_p.push_back(ego.p);
      trace->c1_p.push_back(c1.p);
      const auto& w = agent.last_world();
      trace->tau1_lo.push_back(w.tau1_nn.empty() ? -1.0 : w.tau1_nn.lo);
      trace->tau1_hi.push_back(w.tau1_nn.empty() ? -1.0 : w.tau1_nn.hi);
    }

    ego = ego_dyn.step(ego, a0, config.dt_c);
    c1 = c1_dyn.step(c1, a1, config.dt_c);
    const double t_next = t + config.dt_c;

    if (scn.collision(ego.p, c1.p)) {
      result.collided = true;
      result.steps = step + 1;
      break;
    }
    if (scn.ego_reached_target(ego.p)) {
      result.reached = true;
      result.reach_time = t_next;
      break;
    }
  }

  if (trace != nullptr) trace->switches = agent.switch_events();

  core::EpisodeOutcome outcome;
  outcome.entered_unsafe_set = result.collided;
  outcome.reached_target = result.reached;
  outcome.reach_time = result.reach_time;
  result.eta = core::eta(outcome);
  return result;
}

// ---------------------------------------------------------------------------
// Lane change (frozen copy of src/eval/lane_change_sim.cpp)
// ---------------------------------------------------------------------------

class LegacyLaneCruisePlanner final
    : public core::PlannerBase<scenario::LaneChangeWorld> {
 public:
  LegacyLaneCruisePlanner(double cruise_speed,
                          const vehicle::VehicleLimits& limits)
      : cruise_(cruise_speed), limits_(limits) {}
  double plan(const scenario::LaneChangeWorld& world) override {
    return std::clamp(2.0 * (cruise_ - world.ego.v), limits_.a_min,
                      limits_.a_max);
  }
  std::string_view name() const override { return "cruise"; }

 private:
  double cruise_;
  vehicle::VehicleLimits limits_;
};

inline LegacyResult run_lane_change(
    const sim::LaneChangeSimConfig& config,
    const sim::LaneChangePlannerConfig& planner_cfg, std::uint64_t seed) {
  const auto scn = config.make_scenario();
  util::Rng rng(seed);

  vehicle::DoubleIntegrator ego_dyn(config.ego_limits);
  vehicle::DoubleIntegrator c1_dyn(config.c1_limits);
  vehicle::VehicleState ego{config.geometry.ego_start, config.ego_v0};
  vehicle::VehicleState c1{
      config.geometry.merge_point +
          rng.uniform(config.c1_gap_min, config.c1_gap_max),
      rng.uniform(config.c1_v_min, config.c1_v_max)};

  const auto steps =
      static_cast<std::size_t>(std::ceil(config.horizon / config.dt_c));
  const auto profile = vehicle::AccelProfile::random(
      steps, config.dt_c, c1.v, config.c1_limits, {}, rng);

  sensing::Sensor sensor(config.sensor);
  comm::Channel channel(config.comm);
  filter::InformationFilter estimator(
      config.c1_limits, config.sensor,
      planner_cfg.use_info_filter ? filter::InfoFilterOptions::ultimate()
                                  : filter::InfoFilterOptions::basic());

  auto cruise = std::make_shared<LegacyLaneCruisePlanner>(
      planner_cfg.cruise_speed, config.ego_limits);
  std::shared_ptr<core::PlannerBase<scenario::LaneChangeWorld>> planner =
      cruise;
  core::CompoundPlanner<scenario::LaneChangeWorld>* compound = nullptr;
  if (planner_cfg.use_compound) {
    auto model = std::make_shared<scenario::LaneChangeSafetyModel>(scn);
    auto c =
        std::make_shared<core::CompoundPlanner<scenario::LaneChangeWorld>>(
            cruise, std::move(model));
    compound = c.get();
    planner = c;
  }

  LegacyResult result;
  for (std::size_t step = 0; step < steps; ++step) {
    const double t = static_cast<double>(step) * config.dt_c;
    const double a1 = profile.at(step);
    const vehicle::VehicleSnapshot snap{t, c1, a1};
    channel.offer(comm::Message{1, snap}, rng);
    for (const auto& msg : channel.collect(t)) estimator.on_message(msg);
    if (const auto r = sensor.sense(snap, rng)) estimator.on_sensor(*r);

    scenario::LaneChangeWorld world;
    world.t = t;
    world.ego = ego;
    world.c1_monitor = estimator.estimate(t);
    world.c1_nn = world.c1_monitor;

    const double a0 = planner->plan(world);
    ++result.steps;
    if (compound != nullptr && compound->last_was_emergency()) {
      ++result.emergency_steps;
    }

    ego = ego_dyn.step(ego, a0, config.dt_c);
    c1 = c1_dyn.step(c1, a1, config.dt_c);
    if (scn->violation(ego.p, c1.p)) {
      result.collided = true;
      break;
    }
    if (scn->reached_target(ego.p)) {
      result.reached = true;
      result.reach_time = t + config.dt_c;
      break;
    }
  }

  core::EpisodeOutcome outcome;
  outcome.entered_unsafe_set = result.collided;
  outcome.reached_target = result.reached;
  outcome.reach_time = result.reach_time;
  result.eta = core::eta(outcome);
  return result;
}

// ---------------------------------------------------------------------------
// Intersection (frozen copy of src/eval/intersection_sim.cpp)
// ---------------------------------------------------------------------------

inline util::Interval legacy_conservative_window(
    const filter::StateEstimate& est, double front, double back,
    const vehicle::VehicleLimits& lim) {
  if (!est.valid) return util::Interval{est.t, 1e18};
  if (est.p.lo >= back) return util::Interval::empty_interval();
  const double t = est.t;
  double entry;
  if (est.p.hi >= front) {
    entry = t;
  } else {
    entry = t + util::time_to_travel(front - est.p.hi, est.v.hi, lim.a_max,
                                     lim.v_max);
  }
  const double exit = t + util::time_to_travel(back - est.p.lo, est.v.lo,
                                               lim.a_min,
                                               std::max(lim.v_min, 0.1));
  if (exit < entry) return util::Interval::empty_interval();
  return util::Interval{entry, exit};
}

class LegacyIntersectionCruisePlanner final
    : public core::PlannerBase<scenario::IntersectionWorld> {
 public:
  explicit LegacyIntersectionCruisePlanner(const vehicle::VehicleLimits& lim)
      : lim_(lim) {}
  double plan(const scenario::IntersectionWorld& world) override {
    return std::clamp(2.0 * (11.0 - world.ego.v), lim_.a_min, lim_.a_max);
  }
  std::string_view name() const override { return "cruise"; }

 private:
  vehicle::VehicleLimits lim_;
};

inline LegacyResult run_intersection(const sim::IntersectionSimConfig& config,
                                     bool use_compound, std::uint64_t seed) {
  const auto scn = config.make_scenario();
  util::Rng rng(seed);

  const auto total_steps =
      static_cast<std::size_t>(std::ceil(config.horizon / config.dt_c));

  struct CrossVehicle {
    vehicle::VehicleState state;
    vehicle::AccelProfile profile;
    comm::Channel channel;
    sensing::Sensor sensor;
    std::unique_ptr<filter::InformationFilter> est;
  };
  const auto make_stream = [&](std::size_t count) {
    std::vector<CrossVehicle> stream;
    stream.reserve(count);
    double p = config.cross_zone_front -
               rng.uniform(config.lead_gap_min, config.lead_gap_max);
    for (std::size_t i = 0; i < count; ++i) {
      const double v0 = rng.uniform(config.v_init_min, config.v_init_max);
      stream.push_back(CrossVehicle{
          {p, v0},
          vehicle::AccelProfile::random(total_steps, config.dt_c, v0,
                                        config.cross_limits, {}, rng),
          comm::Channel(config.comm), sensing::Sensor(config.sensor),
          std::make_unique<filter::InformationFilter>(
              config.cross_limits, config.sensor,
              filter::InfoFilterOptions::basic())});
      p -= rng.uniform(config.headway_min, config.headway_max);
    }
    return stream;
  };
  std::vector<CrossVehicle> lane_a = make_stream(config.vehicles_per_lane);
  std::vector<CrossVehicle> lane_b = make_stream(config.vehicles_per_lane);

  auto cruise =
      std::make_shared<LegacyIntersectionCruisePlanner>(config.ego_limits);
  std::shared_ptr<core::PlannerBase<scenario::IntersectionWorld>> planner =
      cruise;
  core::CompoundPlanner<scenario::IntersectionWorld>* compound = nullptr;
  if (use_compound) {
    auto model = std::make_shared<scenario::IntersectionSafetyModel>(scn);
    auto c =
        std::make_shared<core::CompoundPlanner<scenario::IntersectionWorld>>(
            cruise, std::move(model));
    compound = c.get();
    planner = c;
  }

  vehicle::DoubleIntegrator ego_dyn(config.ego_limits);
  vehicle::DoubleIntegrator cross_dyn(config.cross_limits);
  vehicle::VehicleState ego{config.geometry.ego_start, config.ego_v0};

  const auto update_stream = [&](std::vector<CrossVehicle>& stream, double t,
                                 std::size_t step, util::IntervalSet& tau) {
    for (std::size_t k = 0; k < stream.size(); ++k) {
      auto& car = stream[k];
      const double a = car.profile.at(step);
      const vehicle::VehicleSnapshot snap{t, car.state, a};
      car.channel.offer(
          comm::Message{static_cast<std::uint32_t>(k + 1), snap}, rng);
      for (const auto& m : car.channel.collect(t)) car.est->on_message(m);
      if (const auto r = car.sensor.sense(snap, rng)) car.est->on_sensor(*r);
      tau.insert(legacy_conservative_window(
          car.est->estimate(t), config.cross_zone_front,
          config.cross_zone_back, config.cross_limits));
    }
  };
  const auto stream_occupies = [&](const std::vector<CrossVehicle>& stream) {
    for (const auto& car : stream) {
      if (car.state.p > config.cross_zone_front &&
          car.state.p < config.cross_zone_back) {
        return true;
      }
    }
    return false;
  };

  LegacyResult result;
  for (std::size_t step = 0; step < total_steps; ++step) {
    const double t = static_cast<double>(step) * config.dt_c;

    scenario::IntersectionWorld world;
    world.t = t;
    world.ego = ego;
    update_stream(lane_a, t, step, world.tau_a);
    update_stream(lane_b, t, step, world.tau_b);

    const double a0 = planner->plan(world);
    ++result.steps;
    if (compound != nullptr && compound->last_was_emergency()) {
      ++result.emergency_steps;
    }

    ego = ego_dyn.step(ego, a0, config.dt_c);
    for (auto& car : lane_a) {
      car.state =
          cross_dyn.step(car.state, car.profile.at(step), config.dt_c);
    }
    for (auto& car : lane_b) {
      car.state =
          cross_dyn.step(car.state, car.profile.at(step), config.dt_c);
    }

    if ((scn->in_zone_a(ego.p) && stream_occupies(lane_a)) ||
        (scn->in_zone_b(ego.p) && stream_occupies(lane_b))) {
      result.collided = true;
      break;
    }
    if (ego.p >= config.geometry.ego_target) {
      result.reached = true;
      result.reach_time = t + config.dt_c;
      break;
    }
  }

  core::EpisodeOutcome outcome;
  outcome.entered_unsafe_set = result.collided;
  outcome.reached_target = result.reached;
  outcome.reach_time = result.reach_time;
  result.eta = core::eta(outcome);
  return result;
}

// ---------------------------------------------------------------------------
// Multi-vehicle left turn (frozen copy of src/eval/multi_simulation.cpp)
// ---------------------------------------------------------------------------

inline LegacyResult run_multi(const sim::LeftTurnSimConfig& config,
                              const sim::MultiVehicleConfig& multi,
                              const sim::MultiAgentSetup& setup,
                              std::uint64_t seed) {
  assert(setup.scenario != nullptr);
  assert(multi.num_oncoming >= 1);
  const auto& scn = *setup.scenario;
  util::Rng rng(seed);

  const auto& wl = config.workload;
  assert(!wl.p1_grid.empty());
  const auto grid_idx = static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(wl.p1_grid.size()) - 1));
  const double lead_u =
      scenario::LeftTurnGeometry::oncoming_to_frame(wl.p1_grid[grid_idx]);

  const auto total_steps =
      static_cast<std::size_t>(std::ceil(config.horizon / config.dt_c));

  struct Oncoming {
    vehicle::VehicleState state;
    vehicle::AccelProfile profile;
    comm::Channel channel;
    sensing::Sensor sensor;
    std::unique_ptr<filter::Estimator> monitor_est;
    std::unique_ptr<filter::Estimator> nn_est;
  };
  std::vector<Oncoming> cars;
  cars.reserve(multi.num_oncoming);
  double u = lead_u;
  for (std::size_t i = 0; i < multi.num_oncoming; ++i) {
    const double v0 = rng.uniform(wl.v1_init_min, wl.v1_init_max);
    auto profile = vehicle::AccelProfile::random(
        total_steps, config.dt_c, v0, config.c1_limits, wl.profile, rng);
    auto monitor_est = std::make_unique<filter::InformationFilter>(
        config.c1_limits, config.sensor, filter::InfoFilterOptions::basic());
    std::unique_ptr<filter::Estimator> nn_est;
    if (setup.use_info_filter) {
      nn_est = std::make_unique<filter::InformationFilter>(
          config.c1_limits, config.sensor,
          filter::InfoFilterOptions::ultimate());
    } else {
      nn_est = std::make_unique<filter::NaiveExtrapolator>(
          config.sensor.delta_p, config.sensor.delta_v);
    }
    cars.push_back(Oncoming{vehicle::VehicleState{u, v0}, std::move(profile),
                            comm::Channel(config.comm),
                            sensing::Sensor(config.sensor),
                            std::move(monitor_est), std::move(nn_est)});
    u -= multi.platoon_spacing +
         rng.uniform(-multi.spacing_jitter, multi.spacing_jitter);
  }

  auto math =
      std::make_shared<const scenario::MultiVehicleLeftTurn>(setup.scenario);
  std::shared_ptr<core::PlannerBase<scenario::LeftTurnWorld>> single;
  if (setup.net != nullptr) {
    single = std::make_shared<planners::NnPlanner>(
        setup.net, planners::InputEncoding{}, "nn");
  } else {
    single = std::make_shared<planners::ExpertPlanner>(
        setup.scenario, setup.expert_params, "expert");
  }
  auto adapted =
      std::make_shared<scenario::FirstConflictAdapter>(std::move(single));

  std::shared_ptr<core::PlannerBase<scenario::LeftTurnMultiWorld>> planner;
  core::CompoundPlanner<scenario::LeftTurnMultiWorld>* compound = nullptr;
  if (setup.use_compound) {
    auto model = std::make_shared<scenario::MultiVehicleSafetyModel>(
        math, setup.buffers);
    auto c = std::make_shared<
        core::CompoundPlanner<scenario::LeftTurnMultiWorld>>(
        adapted, std::move(model), core::CompoundOptions{setup.use_aggressive});
    compound = c.get();
    planner = std::move(c);
  } else {
    planner = adapted;
  }

  vehicle::DoubleIntegrator ego_dyn(config.ego_limits);
  vehicle::DoubleIntegrator c1_dyn(config.c1_limits);
  vehicle::VehicleState ego{config.geometry.ego_start, config.ego_v0};

  LegacyResult result;
  for (std::size_t step = 0; step < total_steps; ++step) {
    const double t = static_cast<double>(step) * config.dt_c;

    scenario::LeftTurnMultiWorld world;
    world.t = t;
    world.ego = ego;
    world.oncoming_monitor.reserve(cars.size());
    world.oncoming_nn.reserve(cars.size());
    for (std::size_t i = 0; i < cars.size(); ++i) {
      auto& car = cars[i];
      const double a1 = car.profile.at(step);
      const vehicle::VehicleSnapshot snap{t, car.state, a1};
      car.channel.offer(
          comm::Message{static_cast<std::uint32_t>(i + 1), snap}, rng);
      for (const auto& msg : car.channel.collect(t)) {
        car.monitor_est->on_message(msg);
        car.nn_est->on_message(msg);
      }
      if (const auto reading = car.sensor.sense(snap, rng)) {
        car.monitor_est->on_sensor(*reading);
        car.nn_est->on_sensor(*reading);
      }
      world.oncoming_monitor.push_back(car.monitor_est->estimate(t));
      world.oncoming_nn.push_back(car.nn_est->estimate(t));
    }
    world.tau_monitor = math->conservative_windows(world.oncoming_monitor);
    world.tau_nn = math->conservative_windows(world.oncoming_nn);

    const double a0 = planner->plan(world);
    ++result.steps;
    if (compound != nullptr && compound->last_was_emergency()) {
      ++result.emergency_steps;
    }

    ego = ego_dyn.step(ego, a0, config.dt_c);
    bool collided = false;
    for (std::size_t i = 0; i < cars.size(); ++i) {
      cars[i].state =
          c1_dyn.step(cars[i].state, cars[i].profile.at(step), config.dt_c);
      if (scn.collision(ego.p, cars[i].state.p)) collided = true;
    }
    if (collided) {
      result.collided = true;
      break;
    }
    if (scn.ego_reached_target(ego.p)) {
      result.reached = true;
      result.reach_time = t + config.dt_c;
      break;
    }
  }

  core::EpisodeOutcome outcome;
  outcome.entered_unsafe_set = result.collided;
  outcome.reached_target = result.reached;
  outcome.reach_time = result.reach_time;
  result.eta = core::eta(outcome);
  return result;
}

}  // namespace cvsafe::legacy_ref
