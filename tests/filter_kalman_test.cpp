#include "cvsafe/filter/kalman.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cvsafe/sensing/sensor.hpp"
#include "cvsafe/util/rng.hpp"
#include "cvsafe/util/stats.hpp"
#include "cvsafe/vehicle/accel_profile.hpp"
#include "cvsafe/vehicle/dynamics.hpp"

namespace cvsafe::filter {
namespace {

const KalmanConfig kConfig{0.1, 1.0, 1.0, 1.0, 3.0, 64};

/// Drives a vehicle with the given profile and feeds noisy readings into
/// the filter; returns (true, measured, filtered) position & velocity
/// series at the sensing instants.
struct FilterRun {
  std::vector<double> true_p, true_v, meas_p, meas_v, filt_p, filt_v;
};

FilterRun run_filter(KalmanFilter& kf, std::uint64_t seed, double noise,
                     double duration = 12.0) {
  const vehicle::VehicleLimits limits{2.0, 15.0, -3.0, 3.0};
  util::Rng rng(seed);
  vehicle::DoubleIntegrator dyn(limits);
  vehicle::VehicleState s{-50.0, rng.uniform(6.0, 12.0)};
  const double dt_c = 0.05;
  const auto steps = static_cast<std::size_t>(duration / dt_c);
  const auto profile =
      vehicle::AccelProfile::random(steps, dt_c, s.v, limits, {}, rng);
  sensing::Sensor sensor(sensing::SensorConfig::uniform(noise, 0.1));

  FilterRun run;
  for (std::size_t step = 0; step < steps; ++step) {
    const double t = static_cast<double>(step) * dt_c;
    const double a = profile.at(step);
    if (const auto r =
            sensor.sense(vehicle::VehicleSnapshot{t, s, a}, rng)) {
      kf.update(*r);
      run.true_p.push_back(s.p);
      run.true_v.push_back(s.v);
      run.meas_p.push_back(r->p);
      run.meas_v.push_back(r->v);
      run.filt_p.push_back(kf.state_at(t).x);
      run.filt_v.push_back(kf.state_at(t).y);
    }
    s = dyn.step(s, a, dt_c);
  }
  return run;
}

TEST(Kalman, InitializesFromFirstMeasurement) {
  KalmanFilter kf(kConfig);
  EXPECT_FALSE(kf.initialized());
  kf.update({0.0, 5.0, 2.0, 0.0});
  EXPECT_TRUE(kf.initialized());
  EXPECT_NEAR(kf.state_at(0.0).x, 5.0, 1e-12);
  EXPECT_NEAR(kf.state_at(0.0).y, 2.0, 1e-12);
}

TEST(Kalman, PredictsWithConstantVelocity) {
  KalmanFilter kf(kConfig);
  kf.update({0.0, 0.0, 10.0, 0.0});
  const auto x = kf.state_at(1.0);
  EXPECT_NEAR(x.x, 10.0, 1e-9);
  EXPECT_NEAR(x.y, 10.0, 1e-9);
}

TEST(Kalman, PredictsWithControlInput) {
  KalmanFilter kf(kConfig);
  kf.update({0.0, 0.0, 0.0, 2.0});  // measured acceleration 2
  const auto x = kf.state_at(1.0);
  EXPECT_NEAR(x.x, 1.0, 1e-9);  // a t^2 / 2
  EXPECT_NEAR(x.y, 2.0, 1e-9);
}

TEST(Kalman, CovarianceStaysPositiveSemidefinite) {
  KalmanFilter kf(kConfig);
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    kf.update({i * 0.1, rng.uniform(-60, 60), rng.uniform(0, 15),
               rng.uniform(-3, 3)});
    ASSERT_TRUE(kf.covariance_at(i * 0.1).is_positive_semidefinite())
        << "step " << i;
  }
}

TEST(Kalman, CovarianceGrowsWithPredictionHorizon) {
  KalmanFilter kf(kConfig);
  kf.update({0.0, 0.0, 5.0, 0.0});
  const double w1 = kf.position_interval(0.5).width();
  const double w2 = kf.position_interval(2.0).width();
  EXPECT_GT(w2, w1);
}

// The paper's key claim for Fig. 6a: the filter substantially reduces
// the RMSE of both position and velocity relative to raw measurements.
TEST(KalmanProperty, ReducesRmseSubstantially) {
  util::RunningStats red_p, red_v;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    KalmanFilter kf(kConfig);
    const auto run = run_filter(kf, seed, /*noise=*/2.0);
    ASSERT_GT(run.true_p.size(), 50u);
    const double mp = util::rmse(run.meas_p, run.true_p);
    const double fp = util::rmse(run.filt_p, run.true_p);
    const double mv = util::rmse(run.meas_v, run.true_v);
    const double fv = util::rmse(run.filt_v, run.true_v);
    red_p.add((mp - fp) / mp);
    red_v.add((mv - fv) / mv);
  }
  // Paper reports 69% / 76% reduction; require a substantial margin here.
  EXPECT_GT(red_p.mean(), 0.35);
  EXPECT_GT(red_v.mean(), 0.45);
}

TEST(Kalman, MessageRollbackSharpensEstimate) {
  util::RunningStats improvement;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    // Two identical filters on the same readings; one gets an exact
    // (delayed) message mid-run.
    const vehicle::VehicleLimits limits{2.0, 15.0, -3.0, 3.0};
    util::Rng rng(seed);
    vehicle::DoubleIntegrator dyn(limits);
    vehicle::VehicleState s{-50.0, 9.0};
    const double dt_c = 0.05;
    const auto steps = static_cast<std::size_t>(8.0 / dt_c);
    const auto profile =
        vehicle::AccelProfile::random(steps, dt_c, s.v, limits, {}, rng);
    sensing::Sensor sensor(sensing::SensorConfig::uniform(2.0, 0.1));

    KalmanFilter plain(kConfig), rollback(kConfig);
    vehicle::VehicleState state_at_4{};
    double accel_at_4 = 0.0;
    double err_plain = 0.0, err_roll = 0.0;
    int count = 0;
    for (std::size_t step = 0; step < steps; ++step) {
      const double t = static_cast<double>(step) * dt_c;
      const double a = profile.at(step);
      if (std::abs(t - 4.0) < 1e-9) {
        state_at_4 = s;
        accel_at_4 = a;
      }
      if (std::abs(t - 4.25) < 1e-9) {
        // Message recording the exact state at t = 4 arrives at t = 4.25.
        rollback.correct_with_message(4.0, state_at_4.p, state_at_4.v,
                                      accel_at_4);
      }
      if (const auto r =
              sensor.sense(vehicle::VehicleSnapshot{t, s, a}, rng)) {
        plain.update(*r);
        rollback.update(*r);
        if (t > 4.25) {
          err_plain += std::abs(plain.state_at(t).x - s.p);
          err_roll += std::abs(rollback.state_at(t).x - s.p);
          ++count;
        }
      }
      s = dyn.step(s, a, dt_c);
    }
    ASSERT_GT(count, 0);
    improvement.add((err_plain - err_roll) / count);
  }
  // On average the rollback-corrected filter is at least as accurate.
  EXPECT_GT(improvement.mean(), 0.0);
}

TEST(Kalman, MessageNewerThanMeasurementsAdoptedExactly) {
  KalmanFilter kf(kConfig);
  kf.update({0.0, 0.0, 5.0, 0.0});
  kf.correct_with_message(0.5, 2.6, 5.2, 0.0);
  EXPECT_NEAR(kf.state_at(0.5).x, 2.6, 1e-9);
  EXPECT_NEAR(kf.state_at(0.5).y, 5.2, 1e-9);
}

TEST(Kalman, StaleMessageIgnored) {
  KalmanFilter kf(kConfig);
  kf.update({0.0, 0.0, 5.0, 0.0});
  kf.correct_with_message(1.0, 5.0, 5.0, 0.0);
  const auto before = kf.state_at(1.0);
  kf.correct_with_message(0.5, -100.0, 0.0, 0.0);  // older than applied
  const auto after = kf.state_at(1.0);
  EXPECT_EQ(before.x, after.x);
  EXPECT_EQ(before.y, after.y);
}

TEST(Kalman, MessageBeforeAnySensingInitializes) {
  KalmanFilter kf(kConfig);
  kf.correct_with_message(0.0, 7.0, 3.0, 1.0);
  EXPECT_TRUE(kf.initialized());
  EXPECT_NEAR(kf.state_at(0.0).x, 7.0, 1e-9);
}

// Fault channels can reorder and duplicate messages (fault/
// faulty_channel.hpp). The rollback must anchor on the newest message
// regardless of delivery order; late and repeated deliveries are no-ops.
TEST(Kalman, OutOfOrderDeliveryConvergesToSameAnchor) {
  KalmanFilter in_order(kConfig), reordered(kConfig);
  // Identical sensing history on both filters.
  for (int i = 0; i < 20; ++i) {
    const sensing::SensorReading r{i * 0.1, i * 0.8, 8.0, 0.0};
    in_order.update(r);
    reordered.update(r);
  }
  // Two messages; delivery order inverted on the second filter.
  in_order.correct_with_message(2.2, 17.6, 8.0, 0.0);
  in_order.correct_with_message(2.6, 20.8, 8.0, 0.0);
  reordered.correct_with_message(2.6, 20.8, 8.0, 0.0);
  reordered.correct_with_message(2.2, 17.6, 8.0, 0.0);  // stale: ignored
  // Identical sensing resumes after both deliveries.
  for (int i = 0; i < 10; ++i) {
    const sensing::SensorReading r{3.0 + i * 0.1, 24.0 + i * 0.8, 8.0, 0.0};
    in_order.update(r);
    reordered.update(r);
  }
  const double t = 4.0;
  EXPECT_EQ(in_order.state_at(t).x, reordered.state_at(t).x);
  EXPECT_EQ(in_order.state_at(t).y, reordered.state_at(t).y);
  EXPECT_EQ(in_order.position_interval(t).lo,
            reordered.position_interval(t).lo);
  EXPECT_EQ(in_order.position_interval(t).hi,
            reordered.position_interval(t).hi);
}

TEST(Kalman, DuplicateMessageDeliveryIsIdempotent) {
  KalmanFilter once(kConfig), twice(kConfig);
  for (int i = 0; i < 20; ++i) {
    const sensing::SensorReading r{i * 0.1, i * 0.8, 8.0, 0.0};
    once.update(r);
    twice.update(r);
  }
  once.correct_with_message(1.5, 12.0, 8.0, 0.0);
  twice.correct_with_message(1.5, 12.0, 8.0, 0.0);
  twice.correct_with_message(1.5, 12.0, 8.0, 0.0);  // duplicate: ignored
  for (int i = 0; i < 10; ++i) {
    const sensing::SensorReading r{2.0 + i * 0.1, 16.0 + i * 0.8, 8.0, 0.0};
    once.update(r);
    twice.update(r);
  }
  const double t = 3.0;
  EXPECT_EQ(once.state_at(t).x, twice.state_at(t).x);
  EXPECT_EQ(once.state_at(t).y, twice.state_at(t).y);
  EXPECT_EQ(once.position_interval(t).width(),
            twice.position_interval(t).width());
}

TEST(Kalman, IntervalContainsPointEstimate) {
  KalmanFilter kf(kConfig);
  kf.update({0.0, 1.0, 2.0, 0.0});
  kf.update({0.1, 1.2, 2.0, 0.0});
  const auto pi = kf.position_interval(0.2);
  const auto vi = kf.velocity_interval(0.2);
  EXPECT_TRUE(pi.contains(kf.state_at(0.2).x));
  EXPECT_TRUE(vi.contains(kf.state_at(0.2).y));
}

}  // namespace
}  // namespace cvsafe::filter
