#!/usr/bin/env python3
"""Plot the figure data series emitted by the bench binaries.

The C++ benches print their tables and additionally write the raw series
as CSV (fig5_*.csv, fig6a_filter.csv, fig6b_window.csv, multi_vehicle.csv,
burst.csv). This optional helper turns them into PNGs.

Usage:
    python3 scripts/plot_figures.py [csv_dir] [out_dir]

Requires matplotlib; everything else in the repository is dependency-free.
"""

import csv
import os
import sys

try:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
except ImportError:  # pragma: no cover - optional tooling
    sys.exit("matplotlib is required for plotting (pip install matplotlib)")


def read_csv(path):
    with open(path, newline="") as fh:
        rows = list(csv.reader(fh))
    header, data = rows[0], rows[1:]
    cols = {name: [] for name in header}
    for row in data:
        for name, value in zip(header, row):
            try:
                cols[name].append(float(value))
            except ValueError:
                cols[name].append(value)
    return cols


def plot_fig5(csv_dir, out_dir, stem, xlabel):
    path = os.path.join(csv_dir, stem + ".csv")
    if not os.path.exists(path):
        return
    cols = read_csv(path)
    x_name = list(cols.keys())[0]
    x = cols[x_name]

    fig, (ax1, ax2) = plt.subplots(1, 2, figsize=(11, 4))
    ax1.plot(x, cols["reach_pure"], "o-", label="pure NN")
    ax1.plot(x, cols["reach_basic"], "s--", label="basic")
    ax1.plot(x, cols["reach_ultimate"], "^-", label="ultimate")
    ax1.set_xlabel(xlabel)
    ax1.set_ylabel("reaching time [s]")
    ax1.legend()
    ax1.grid(alpha=0.3)

    ax2.plot(x, [100 * v for v in cols["emerg_basic"]], "s--", label="basic")
    ax2.plot(x, [100 * v for v in cols["emerg_ultimate"]], "^-",
             label="ultimate")
    ax2.set_xlabel(xlabel)
    ax2.set_ylabel("emergency frequency [%]")
    ax2.legend()
    ax2.grid(alpha=0.3)

    fig.suptitle(stem)
    fig.tight_layout()
    fig.savefig(os.path.join(out_dir, stem + ".png"), dpi=150)
    plt.close(fig)
    print("wrote", stem + ".png")


def plot_fig6a(csv_dir, out_dir):
    path = os.path.join(csv_dir, "fig6a_filter.csv")
    if not os.path.exists(path):
        return
    cols = read_csv(path)
    fig, ax = plt.subplots(figsize=(8, 4))
    ax.plot(cols["t"], cols["true_v"], "k-", label="real velocity")
    ax.plot(cols["t"], cols["measured_v"], ".", alpha=0.4,
            label="sensor-measured")
    ax.plot(cols["t"], cols["filtered_v"], "-", label="after filter")
    ax.plot(cols["t"], cols["filtered_rollback_v"], "--",
            label="after filter + msg rollback")
    ax.set_xlabel("t [s]")
    ax.set_ylabel("velocity [m/s]")
    ax.legend()
    ax.grid(alpha=0.3)
    fig.suptitle("Fig. 6a: measured velocities before and after the filter")
    fig.tight_layout()
    fig.savefig(os.path.join(out_dir, "fig6a_filter.png"), dpi=150)
    plt.close(fig)
    print("wrote fig6a_filter.png")


def plot_fig6b(csv_dir, out_dir):
    path = os.path.join(csv_dir, "fig6b_window.csv")
    if not os.path.exists(path):
        return
    cols = read_csv(path)
    fig, ax = plt.subplots(figsize=(8, 4))
    ax.fill_between(cols["t"], cols["cons_lo"], cols["cons_hi"], alpha=0.25,
                    label="conservative window (Eq. 7)")
    ax.fill_between(cols["t"], cols["aggr_lo"], cols["aggr_hi"], alpha=0.45,
                    label="aggressive window (Eq. 8)")
    ax.plot(cols["t"], cols["real_entry"], "k-", label="real entry")
    ax.plot(cols["t"], cols["real_exit"], "k--", label="real exit")
    ax.set_xlabel("estimation time t [s]")
    ax.set_ylabel("passing time [s]")
    ax.legend()
    ax.grid(alpha=0.3)
    fig.suptitle("Fig. 6b: passing-time-window estimation")
    fig.tight_layout()
    fig.savefig(os.path.join(out_dir, "fig6b_window.png"), dpi=150)
    plt.close(fig)
    print("wrote fig6b_window.png")


def plot_multi(csv_dir, out_dir):
    path = os.path.join(csv_dir, "multi_vehicle.csv")
    if not os.path.exists(path):
        return
    cols = read_csv(path)
    fig, ax = plt.subplots(figsize=(7, 4))
    ax.plot(cols["n"], cols["reach_time"], "o-", label="reaching time [s]")
    ax2 = ax.twinx()
    ax2.plot(cols["n"], [100 * v for v in cols["emergency_freq"]], "s--",
             color="tab:red", label="emergency freq [%]")
    ax.set_xlabel("oncoming vehicles")
    ax.set_ylabel("reaching time [s]")
    ax2.set_ylabel("emergency frequency [%]")
    ax.grid(alpha=0.3)
    fig.suptitle("Multi-vehicle scalability (100% safe throughout)")
    fig.tight_layout()
    fig.savefig(os.path.join(out_dir, "multi_vehicle.png"), dpi=150)
    plt.close(fig)
    print("wrote multi_vehicle.png")


def main():
    csv_dir = sys.argv[1] if len(sys.argv) > 1 else "."
    out_dir = sys.argv[2] if len(sys.argv) > 2 else csv_dir
    os.makedirs(out_dir, exist_ok=True)
    plot_fig5(csv_dir, out_dir, "fig5_transmission", "dt_m = dt_s [s]")
    plot_fig5(csv_dir, out_dir, "fig5_drop", "message drop probability")
    plot_fig5(csv_dir, out_dir, "fig5_sensor", "sensor uncertainty delta")
    plot_fig6a(csv_dir, out_dir)
    plot_fig6b(csv_dir, out_dir)
    plot_multi(csv_dir, out_dir)


if __name__ == "__main__":
    main()
