#!/usr/bin/env python3
"""Summarize a cvsafe structured JSONL event trace.

Reads the trace written by `cvsafe_cli run --trace out.jsonl` or
`cvsafe_cli campaign --trace out.jsonl` (one JSON object per line, schema
in docs/OBSERVABILITY.md) and prints:

  * per-episode monitor switch counts and emergency occupancy,
  * the degradation-ladder occupancy timeline (steps spent per level and
    the transition edge list),
  * the plausibility-gate rejection breakdown by reason code,
  * fault-injection action counts by kind, Kalman rollback stats,
  * episode outcomes (collisions, reach rate, eta range).

Exit status: 0 on a well-formed trace, 1 on malformed lines or when any
`trace_dropped` marker is present (a truncated trace must never pass
silently), 2 on usage errors.

    python3 scripts/trace_report.py campaign_trace.jsonl
"""

from __future__ import annotations

import argparse
import collections
import json
import sys


def episode_key(rec: dict) -> tuple:
    return (rec.get("fault", ""), rec.get("scenario", ""), rec["ep"],
            rec["seed"])


def fmt_key(key: tuple) -> str:
    fault, scenario, ep, seed = key
    parts = []
    if fault:
        parts.append(f"fault={fault}")
    if scenario:
        parts.append(f"scenario={scenario}")
    parts.append(f"ep={ep}")
    parts.append(f"seed={seed}")
    return " ".join(parts)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="JSONL trace file")
    ap.add_argument("--max-episodes", type=int, default=20,
                    help="cap on per-episode lines printed (default 20)")
    args = ap.parse_args()

    episodes: dict[tuple, collections.Counter] = collections.OrderedDict()
    ladder_steps: collections.Counter = collections.Counter()
    ladder_edges: collections.Counter = collections.Counter()
    rejections: collections.Counter = collections.Counter()
    faults: collections.Counter = collections.Counter()
    rollbacks = 0
    replayed = 0
    outcomes: list[dict] = []
    dropped_markers: list[tuple] = []
    malformed = 0

    try:
        stream = open(args.trace, encoding="utf-8")
    except OSError as e:
        print(f"trace_report: {e}", file=sys.stderr)
        return 2

    with stream:
        for line_no, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
                kind = rec["type"]
                key = episode_key(rec)
            except (json.JSONDecodeError, KeyError) as e:
                print(f"{args.trace}:{line_no}: malformed line ({e})",
                      file=sys.stderr)
                malformed += 1
                continue
            per_ep = episodes.setdefault(key, collections.Counter())
            per_ep[kind] += 1
            if kind == "step":
                if rec.get("emergency"):
                    per_ep["emergency_steps"] += 1
                level = rec.get("ladder_level", -1)
                if level >= 0:
                    ladder_steps[level] += 1
            elif kind == "monitor":
                if rec.get("to_emergency"):
                    per_ep["switches_to_emergency"] += 1
            elif kind == "ladder":
                ladder_edges[(rec["from"], rec["to"])] += 1
            elif kind == "gate_reject":
                rejections[rec["reason"]] += 1
            elif kind == "fault":
                faults[rec["kind"]] += 1
            elif kind == "kalman_rollback":
                rollbacks += 1
                replayed += rec.get("replayed", 0)
            elif kind == "episode_end":
                outcomes.append(rec)
            elif kind == "trace_dropped":
                dropped_markers.append(key)

    print(f"trace      {args.trace}: {len(episodes)} episode(s)")

    print("\nepisodes   (steps | switches->emergency | emergency steps)")
    for i, (key, per_ep) in enumerate(episodes.items()):
        if i >= args.max_episodes:
            print(f"  ... {len(episodes) - args.max_episodes} more")
            break
        print(f"  {fmt_key(key)}: {per_ep['step']} steps | "
              f"{per_ep['switches_to_emergency']} switches | "
              f"{per_ep['emergency_steps']} emergency")

    if ladder_steps or ladder_edges:
        print("\nladder     occupancy (steps per level id, 0 = full) "
              "and transition edges")
        for level in sorted(ladder_steps):
            print(f"  level {level}: {ladder_steps[level]} steps")
        for (src, dst), n in sorted(ladder_edges.items()):
            print(f"  {src} -> {dst}: {n} transition(s)")

    if rejections:
        print("\nrejections (plausibility gate, by reason)")
        for reason, n in sorted(rejections.items()):
            print(f"  {reason}: {n}")

    if faults:
        print("\nfaults     (injected actions by kind)")
        for kind, n in sorted(faults.items()):
            print(f"  {kind}: {n}")

    if rollbacks:
        print(f"\nrollbacks  {rollbacks} Kalman re-anchor(s), "
              f"{replayed} sensor update(s) replayed")

    if outcomes:
        collided = sum(1 for o in outcomes if o.get("collided"))
        reached = sum(1 for o in outcomes if o.get("reached"))
        etas = [o["eta"] for o in outcomes if o.get("eta") is not None]
        print(f"\noutcomes   {len(outcomes)} finished: {collided} collided, "
              f"{reached} reached")
        if etas:
            print(f"           eta in [{min(etas):.4f}, {max(etas):.4f}]")

    ok = True
    if dropped_markers:
        for key in dropped_markers:
            print(f"trace_report: events dropped in {fmt_key(key)} "
                  "(recorder cap hit)", file=sys.stderr)
        ok = False
    if malformed:
        print(f"trace_report: {malformed} malformed line(s)",
              file=sys.stderr)
        ok = False
    if not episodes:
        print("trace_report: empty trace", file=sys.stderr)
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
