#!/usr/bin/env python3
"""Independent re-checker for cvsafe sound certificates.

Revalidates a certificate produced by `cvsafe_cli certify --cert FILE`
using nothing but the Python standard library — a second, independent
implementation of every numeric rule the prover used, so a bug (or a
forgery) in the C++ prover cannot silently survive:

  1. self-hash      — FNV-1a over the artifact body matches.
  2. domains        — the proof-tree root boxes are re-derived from the
                      scenario/encoding sections (bit-exact).
  3. tiling         — every leaf path is re-walked from the root with the
                      prover's deterministic split rule; the reconstructed
                      box must equal the recorded one bit for bit, the
                      path set must be prefix-free and measure-complete
                      (sum of 2^-len == 1), so the leaves exactly
                      partition the domain.
  4. Eq. 4 margin   — each numeric leaf's successor-slack lower bound is
                      recomputed with directed rounding (math.nextafter
                      mirrors the C++ ops exactly: both are IEEE-754
                      doubles) and must match the claim bit for bit and
                      be >= 0.
  5. Eq. 4 lemma    — each lemma leaf must satisfy a discharge
                      precondition: all states stop within the step, or
                      the box has reached the width floor / depth cap
                      (the invariance lemma of docs/CERTIFICATION.md
                      covers it analytically).
  6. NN bounds      — an independent interval forward pass through the
                      embedded network (math.tanh with the checker's own,
                      larger, error margin) re-proves every leaf
                      enclosure inside the assert range; the claimed leaf
                      enclosures must agree with the checker's to within
                      a tolerance that the implementation differences
                      cannot exceed, and a concrete midpoint evaluation
                      must land inside each claimed enclosure.
  7. hull           — the certified hull is exactly the union of the
                      claimed leaf enclosures, and counters match.

Exit status 0 iff every check passes. Any mismatch — including a single
falsified leaf bound — is reported and fails the run.

Usage:  python3 scripts/check_certificate.py CERT.json [-v]
"""

import argparse
import json
import math
import sys
from fractions import Fraction

INF = math.inf

# The checker's own tanh enclosure margin. Larger than the prover's
# 2^-48: it must absorb |math.tanh - tanh| (~1 ulp), |fast_tanh - tanh|
# (<= 4 ulp, validated in-tree), and the prover's margin itself, so the
# checker's enclosure is a superset of the prover's up to the agreement
# tolerance below.
TANH_MARGIN = 2.0 ** -45

# Endpoint agreement tolerance between the prover's leaf enclosures and
# the checker's. The only divergence source is the tanh margin gap
# (~2^-45 per neuron) amplified by the layer weights; 1e-9 is orders of
# magnitude above the worst case and orders below any real falsification.
AGREE_TOL = 1e-9

FORMAT = "cvsafe-sound-certificate v1"


# --------------------------------------------------------------------------
# Directed interval arithmetic mirroring include/cvsafe/util/rounded_interval.hpp
# bit for bit. Intervals are (lo, hi) tuples; None is the empty interval.
# --------------------------------------------------------------------------

def prv(x):
    return x if x == -INF else math.nextafter(x, -INF)


def nxt(x):
    return x if x == INF else math.nextafter(x, INF)


def i_add(a, b):
    if a is None or b is None:
        return None
    return (prv(a[0] + b[0]), nxt(a[1] + b[1]))


def i_sub(a, b):
    if a is None or b is None:
        return None
    return (prv(a[0] - b[1]), nxt(a[1] - b[0]))


def i_mul(a, b):
    if a is None or b is None:
        return None
    c = (a[0] * b[0], a[0] * b[1], a[1] * b[0], a[1] * b[1])
    return (prv(min(c)), nxt(max(c)))


def i_scale(a, s):
    if a is None:
        return None
    if s >= 0.0:
        return (prv(a[0] * s), nxt(a[1] * s))
    return (prv(a[1] * s), nxt(a[0] * s))


def i_div_scalar(a, s):
    if a is None:
        return None
    if s > 0.0:
        return (prv(a[0] / s), nxt(a[1] / s))
    return (prv(a[1] / s), nxt(a[0] / s))


def i_sqr(a):
    if a is None:
        return None
    m1, m2 = a[0] * a[0], a[1] * a[1]
    if a[0] >= 0.0:
        return (prv(m1), nxt(m2))
    if a[1] <= 0.0:
        return (prv(m2), nxt(m1))
    return (0.0, nxt(max(m1, m2)))


def i_intersect(a, b):
    if a is None or b is None:
        return None
    lo, hi = max(a[0], b[0]), min(a[1], b[1])
    return None if lo > hi else (lo, hi)


def i_width(a):
    return 0.0 if a is None else a[1] - a[0]


# --------------------------------------------------------------------------
# Certificate parsing.
# --------------------------------------------------------------------------

def hx(s):
    """Parses the certificate's lossless hexfloat string rendering."""
    if s == "inf":
        return INF
    if s == "-inf":
        return -INF
    return float.fromhex(s)


def hx_iv(pair):
    return (hx(pair[0]), hx(pair[1]))


def fnv1a_hex(data):
    h = 0xCBF29CE484222325
    for byte in data:
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return format(h, "016x")


class CheckFailure(Exception):
    pass


class Checker:
    def __init__(self, verbose=False):
        self.verbose = verbose
        self.failures = []

    def fail(self, what):
        self.failures.append(what)

    def note(self, what):
        if self.verbose:
            print("  " + what)

    # -- shared tree helpers ------------------------------------------------

    @staticmethod
    def widest_scaled_axis(box, domain_width):
        """Mirror of the prover's deterministic split-axis rule."""
        axis, best = 0, -1.0
        for i, iv in enumerate(box):
            w = i_width(iv) / domain_width[i] if domain_width[i] > 0.0 else 0.0
            if w > best:
                best, axis = w, i
        return axis

    def walk_path(self, root, domain_width, path):
        """Re-derives a leaf box from the root by replaying the split rule."""
        box = list(root)
        for bit in path:
            axis = self.widest_scaled_axis(box, domain_width)
            lo, hi = box[axis]
            mid = 0.5 * (lo + hi)
            box[axis] = (lo, mid) if bit == "0" else (mid, hi)
        return box

    def check_tiling(self, label, leaves, root, domain_width, box_of):
        paths = [leaf["path"] for leaf in leaves]
        ordered = sorted(paths)
        for a, b in zip(ordered, ordered[1:]):
            if b.startswith(a):
                self.fail(f"{label}: path {b!r} overlaps leaf {a!r}")
        measure = sum(Fraction(1, 2 ** len(p)) for p in paths)
        if measure != 1:
            self.fail(f"{label}: leaf paths cover measure {measure}, not 1")
        for leaf in leaves:
            derived = self.walk_path(root, domain_width, leaf["path"])
            recorded = box_of(leaf)
            if derived != recorded:
                self.fail(
                    f"{label}: leaf {leaf['path']!r} box does not match the "
                    f"deterministic split replay: {recorded} != {derived}")
        self.note(f"{label}: {len(leaves)} leaves tile the domain")

    # -- Eq. 4 --------------------------------------------------------------

    def eval_eq4_box(self, c, v, s):
        """Bit-exact mirror of the prover's eval_eq4_box."""
        a_min, two_am, dt = c

        # q upper bound at (v.hi, s.lo).
        if v[1] == 0.0:
            q_up = 0.0
        else:
            u_up = nxt(v[1] * v[1])
            u_dn = prv(v[1] * v[1])
            db_dn = prv(u_dn / two_am)
            den_dn = 2.0 * prv(db_dn + s[0])
            q_up = -a_min if den_dn <= 0.0 else min(-a_min, nxt(u_up / den_dn))
        # q lower bound at (v.lo, s.hi).
        if v[0] == 0.0:
            q_dn = 0.0
        else:
            u_dn = prv(v[0] * v[0])
            u_up = nxt(v[0] * v[0])
            db_up = nxt(u_up / two_am)
            den_up = 2.0 * nxt(db_up + s[1])
            q_dn = 0.0 if den_up <= 0.0 else max(0.0, prv(u_dn / den_up))

        a = (max(a_min, -q_up), -q_dn)
        dt_i = (dt, dt)
        vn = i_add(v, i_mul(a, dt_i))
        vn_pos = i_intersect(vn, (0.0, INF))
        if vn_pos is None:
            return {"all_stopping": True, "margin_ok": False, "lb": 0.0}

        bd = i_div_scalar(i_sqr(v), two_am)
        gap = i_add(bd, s)
        half_dt2 = i_scale(i_mul(dt_i, dt_i), 0.5)
        disp = i_add(i_mul(v, dt_i), i_mul(a, half_dt2))
        bd_next = i_div_scalar(i_sqr(vn_pos), two_am)
        slack_next = i_sub(i_sub(gap, disp), bd_next)
        return {
            "all_stopping": False,
            "margin_ok": slack_next[0] >= 0.0,
            "lb": slack_next[0],
        }

    def check_eq4(self, cert):
        scn = cert["scenario"]
        opts = cert["options"]
        eq4 = cert["eq4"]
        a_min = hx(scn["a_min"])
        consts = (a_min, -2.0 * a_min, hx(scn["dt_c"]))
        v_max = hx(scn["v_max"])
        s_max = hx(scn["ego_front"]) - hx(scn["ego_start"])
        min_width = hx(opts["min_width"])
        max_depth = opts["max_depth"]

        if not eq4["proved"]:
            self.fail("eq4: certificate does not claim a proof")
        if hx_iv(eq4["v_domain"]) != (0.0, v_max):
            self.fail("eq4: v_domain does not match the scenario")
        if hx_iv(eq4["s_domain"]) != (0.0, s_max):
            self.fail("eq4: s_domain does not match the scenario")

        leaves = [
            {
                "path": leaf["path"],
                "v": hx_iv(leaf["v"]),
                "s": hx_iv(leaf["s"]),
                "rule": leaf["rule"],
                "lb": hx(leaf["slack_next_lb"]),
            }
            for leaf in eq4["leaves"]
        ]
        root = [(0.0, v_max), (0.0, s_max)]
        domain_width = [v_max, s_max]
        self.check_tiling("eq4", leaves, root, domain_width,
                          lambda leaf: [leaf["v"], leaf["s"]])

        margin = lemma = 0
        for leaf in leaves:
            ev = self.eval_eq4_box(consts, leaf["v"], leaf["s"])
            if leaf["rule"] == "margin":
                margin += 1
                if ev["all_stopping"] or not ev["margin_ok"]:
                    self.fail(f"eq4: margin leaf {leaf['path']!r} does not "
                              f"re-verify (recomputed lb {ev['lb']!r})")
                elif ev["lb"] != leaf["lb"]:
                    self.fail(f"eq4: margin leaf {leaf['path']!r} claims lb "
                              f"{leaf['lb']!r} but recomputation gives "
                              f"{ev['lb']!r}")
                elif leaf["lb"] < 0.0:
                    self.fail(f"eq4: margin leaf {leaf['path']!r} has a "
                              f"negative bound")
            elif leaf["rule"] == "lemma":
                lemma += 1
                box = [leaf["v"], leaf["s"]]
                axis = self.widest_scaled_axis(box, domain_width)
                scaled = (i_width(box[axis]) / domain_width[axis]
                          if domain_width[axis] > 0.0 else 0.0)
                if not (ev["all_stopping"] or scaled <= min_width
                        or len(leaf["path"]) >= max_depth):
                    self.fail(f"eq4: lemma leaf {leaf['path']!r} satisfies no "
                              f"discharge precondition (scaled width "
                              f"{scaled!r})")
            else:
                self.fail(f"eq4: unknown rule {leaf['rule']!r}")
        if margin != eq4["margin_leaves"] or lemma != eq4["lemma_leaves"]:
            self.fail("eq4: leaf-rule counters do not match the leaf list")
        self.note(f"eq4: {margin} margin bounds recomputed bit-exact, "
                  f"{lemma} lemma preconditions verified")

    # -- Theorem B (NN output bounds) ---------------------------------------

    @staticmethod
    def parse_network(cert):
        layers = []
        for layer in cert["network"]:
            out, inp = layer["out"], layer["in"]
            flat = [hx(wv) for wv in layer["weights"]]
            if len(flat) != out * inp or len(layer["bias"]) != out:
                raise CheckFailure("network: layer shape mismatch")
            layers.append({
                "act": layer["activation"],
                "w": [flat[r * inp:(r + 1) * inp] for r in range(out)],
                "b": [hx(bv) for bv in layer["bias"]],
            })
        return layers

    def interval_forward(self, layers, box):
        """The checker's own sound enclosure (independent of the prover)."""
        cur = list(box)
        for layer in layers:
            nxt_vals = []
            for row, bias in zip(layer["w"], layer["b"]):
                acc = (0.0, 0.0)
                for k, wv in enumerate(row):
                    acc = i_add(acc, i_scale(cur[k], wv))
                z = i_add(acc, (bias, bias))
                if layer["act"] == "identity":
                    nxt_vals.append(z)
                elif layer["act"] == "relu":
                    nxt_vals.append((max(0.0, z[0]), max(0.0, z[1])))
                elif layer["act"] == "tanh":
                    t_lo, t_hi = math.tanh(z[0]), math.tanh(z[1])
                    lo, hi = min(t_lo, t_hi), max(t_lo, t_hi)
                    nxt_vals.append((max(-1.0, prv(lo - TANH_MARGIN)),
                                     min(1.0, nxt(hi + TANH_MARGIN))))
                else:
                    raise CheckFailure(
                        f"network: no sound enclosure for activation "
                        f"{layer['act']!r}")
            cur = nxt_vals
        return cur

    @staticmethod
    def concrete_forward(layers, x):
        cur = list(x)
        for layer in layers:
            nxt_vals = []
            for row, bias in zip(layer["w"], layer["b"]):
                acc = 0.0
                for k, wv in enumerate(row):
                    acc += cur[k] * wv
                z = acc + bias
                if layer["act"] == "identity":
                    nxt_vals.append(z)
                elif layer["act"] == "relu":
                    nxt_vals.append(max(0.0, z))
                else:
                    nxt_vals.append(math.tanh(z))
            cur = nxt_vals
        return cur

    def check_nn(self, cert):
        scn, enc = cert["scenario"], cert["encoding"]
        nnb = cert["nn_bounds"]
        layers = self.parse_network(cert)

        if not nnb["proved"]:
            self.fail("nn_bounds: certificate does not claim a proof")

        # Re-derive the encoded root domain from the raw planner view.
        raw = [
            (hx(scn["ego_start"]), hx(scn["ego_back"])),
            (0.0, hx(scn["v_max"])),
            (hx(enc["w_min"]), hx(enc["w_max"])),
            (hx(enc["w_min"]), hx(enc["w_max"])),
        ]
        scales = [hx(enc["p_scale"]), hx(enc["v_scale"]),
                  hx(enc["w_scale"]), hx(enc["w_scale"])]
        root = [i_div_scalar(riv, sc) for riv, sc in zip(raw, scales)]
        claimed_root = [hx_iv(pair) for pair in nnb["domain"]]
        if root != claimed_root:
            self.fail("nn_bounds: domain does not match the directed "
                      "encoding of the planner view")
        domain_width = [i_width(iv) for iv in root]

        assert_range = hx_iv(nnb["assert"])
        leaves = [
            {
                "path": leaf["path"],
                "box": [hx_iv(pair) for pair in leaf["box"]],
                "out": hx_iv(leaf["out"]),
            }
            for leaf in nnb["leaves"]
        ]
        self.check_tiling("nn_bounds", leaves, root, domain_width,
                          lambda leaf: leaf["box"])

        hull_lo, hull_hi = INF, -INF
        for leaf in leaves:
            enclosure = self.interval_forward(layers, leaf["box"])[0]
            out = leaf["out"]
            # Independent proof: the checker's own enclosure fits the
            # assert range regardless of what the prover claimed.
            if not (assert_range[0] <= enclosure[0]
                    and enclosure[1] <= assert_range[1]):
                self.fail(f"nn_bounds: leaf {leaf['path']!r} enclosure "
                          f"{enclosure} escapes the assert range")
            # The claim must agree with the independent recomputation.
            if (abs(out[0] - enclosure[0]) > AGREE_TOL
                    or abs(out[1] - enclosure[1]) > AGREE_TOL):
                self.fail(f"nn_bounds: leaf {leaf['path']!r} claims {out} "
                          f"but the checker derives {enclosure}")
            # And a concrete evaluation must land inside the claim.
            mid = [0.5 * (iv[0] + iv[1]) for iv in leaf["box"]]
            val = self.concrete_forward(layers, mid)[0]
            if not (out[0] - AGREE_TOL <= val <= out[1] + AGREE_TOL):
                self.fail(f"nn_bounds: leaf {leaf['path']!r} claim {out} "
                          f"excludes the concrete midpoint value {val!r}")
            hull_lo, hull_hi = min(hull_lo, out[0]), max(hull_hi, out[1])

        if hx_iv(nnb["hull"]) != (hull_lo, hull_hi):
            self.fail("nn_bounds: hull is not the union of the leaf "
                      "enclosures")
        self.note(f"nn_bounds: {len(leaves)} leaf enclosures re-proved in "
                  f"[{hull_lo:.6g}, {hull_hi:.6g}]")

    # -- artifact-level checks ----------------------------------------------

    def check_hash(self, text):
        marker = '  "hash": "'
        idx = text.rfind(marker)
        if idx < 0:
            self.fail("hash: certificate has no self-hash")
            return
        claimed = text[idx + len(marker):idx + len(marker) + 16]
        actual = fnv1a_hex(text[:idx].encode())
        if claimed != actual:
            self.fail(f"hash: claims {claimed} but body hashes to {actual}")
        else:
            self.note(f"hash: {actual} verified")

    def run(self, text):
        cert = json.loads(text)
        if cert.get("format") != FORMAT:
            self.fail(f"format: expected {FORMAT!r}, got "
                      f"{cert.get('format')!r}")
            return
        self.check_hash(text)
        self.check_eq4(cert)
        self.check_nn(cert)


def self_test():
    """Exercises the checker's own arithmetic kernels against published
    vectors and sampled containment properties. The checker is the last
    line of defence, so its primitives get their own corpus: a bug here
    would make it accept garbage (or reject every valid certificate)."""
    failures = []

    def check(name, ok):
        if ok:
            print(f"  ok   {name}")
        else:
            failures.append(name)
            print(f"  FAIL {name}", file=sys.stderr)

    check("fnv1a empty", fnv1a_hex(b"") == "cbf29ce484222325")
    check("fnv1a 'a'", fnv1a_hex(b"a") == "af63dc4c8601ec8c")
    check("fnv1a 'foobar'", fnv1a_hex(b"foobar") == "85944171f73967e8")

    check("prv brackets strictly",
          all(prv(x) < x < nxt(x)
              for x in (0.0, 1.0, -1.0, 0.1, 1e300, -1e300, 1e-300)))
    check("infinities are fixed points",
          prv(-INF) == -INF and nxt(INF) == INF
          and prv(INF) < INF and nxt(-INF) > -INF)

    check("hexfloat roundtrip",
          all(hx(float.hex(x)) == x
              for x in (0.0, -0.0, 1.0, 0.1, -2.0 ** -45, 1e300))
          and hx("inf") == INF and hx("-inf") == -INF)

    # Containment fuzz with a deterministic LCG (no random module: the
    # corpus must be identical on every run and platform).
    state = 0x243F6A8885A308D3

    def rnd(lo, hi):
        nonlocal state
        state = (state * 6364136223846793005 + 1442695040888963407) % 2**64
        return lo + (hi - lo) * (state / 2.0**64)

    contained = True
    for _ in range(2000):
        a = sorted((rnd(-10, 10), rnd(-10, 10)))
        b = sorted((rnd(-10, 10), rnd(-10, 10)))
        s = rnd(-4, 4) or 1.0
        x = rnd(a[0], a[1])
        y = rnd(b[0], b[1])
        ia, ib = (a[0], a[1]), (b[0], b[1])
        pairs = (
            (i_add(ia, ib), x + y),
            (i_sub(ia, ib), x - y),
            (i_mul(ia, ib), x * y),
            (i_scale(ia, s), x * s),
            (i_div_scalar(ia, s), x / s),
            (i_sqr(ia), x * x),
        )
        for iv, val in pairs:
            if not iv[0] <= val <= iv[1]:
                contained = False
    check("directed ops contain concrete evaluations", contained)

    check("sqr straddling zero floors at 0",
          i_sqr((-2.0, 3.0))[0] == 0.0 and i_sqr((-2.0, 3.0))[1] >= 9.0)
    check("intersect of disjoint is empty",
          i_intersect((0.0, 1.0), (2.0, 3.0)) is None)
    check("empty is absorbing",
          i_add(None, (0.0, 1.0)) is None and i_width(None) == 0.0)

    if failures:
        print(f"check_certificate --self-test: {len(failures)} case(s) "
              "failed", file=sys.stderr)
        return 1
    print("check_certificate --self-test: all kernel checks pass")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Independently revalidate a cvsafe sound certificate.")
    parser.add_argument("certificate", nargs="?", help="certificate JSON path")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print per-section progress")
    parser.add_argument("--self-test", action="store_true",
                        help="run the checker's kernel corpus and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if args.certificate is None:
        parser.error("certificate path required (or use --self-test)")

    with open(args.certificate, "r", encoding="utf-8") as handle:
        text = handle.read()

    checker = Checker(verbose=args.verbose)
    try:
        checker.run(text)
    except (CheckFailure, KeyError, ValueError, TypeError) as err:
        checker.fail(f"malformed certificate: {err}")

    if checker.failures:
        for failure in checker.failures:
            print(f"FAIL {failure}", file=sys.stderr)
        print(f"certificate REJECTED ({len(checker.failures)} failures)",
              file=sys.stderr)
        return 1
    print("certificate OK: every proof obligation re-verified independently")
    return 0


if __name__ == "__main__":
    sys.exit(main())
