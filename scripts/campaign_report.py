#!/usr/bin/env python3
"""Render a fault-campaign markdown report from the observability artifacts.

Combines the three artifact families that `cvsafe_cli campaign` (and
`batch`/`attack` for the flight/telemetry parts) can emit:

  * the campaign CSV (`--out camp.csv`) — per-cell aggregates,
  * triggered flight-recorder dumps (`--flight-recorder flight.jsonl`) —
    the causal event ring of every episode that tripped a trigger
    (min-eta below threshold, EMERGENCY entry, unsafe-set entry,
    rejection burst), labeled by scenario/fault,
  * the deterministic telemetry registry (`--telemetry tel.prom`) plus
    its wall-clock sibling `tel.prom.spans` — min-eta histogram,
    rejection reasons, ladder occupancy, per-sweep time accounting.

into one human-readable markdown report: invariant verdict, worst cells,
eta distribution, rejection/ladder breakdowns, per-sweep time split, and
the worst triggered episodes with their flight-recorder event rings
inlined. Every input is optional — sections without data are skipped —
so the same script serves batch runs (no CSV) and telemetry-less
campaigns (CSV only).

    python3 scripts/campaign_report.py --csv camp.csv \
        --flights flight.jsonl --telemetry tel.prom --out report.md

Exit status: 0 on success, 1 on malformed inputs, 2 on usage errors
(including no inputs at all).
"""

from __future__ import annotations

import argparse
import csv
import json
import os
import re
import sys

BAR_WIDTH = 40
PROM_LINE = re.compile(r"^([A-Za-z_:][A-Za-z0-9_:]*)(\{[^}]*\})?\s+(\S+)$")


def read_prom(path: str) -> dict[str, float]:
    """Parses Prometheus text into {'name{labels}': value}."""
    series: dict[str, float] = {}
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            m = PROM_LINE.match(line)
            if m is None:
                raise ValueError(f"malformed prometheus line: {line}")
            name, labels, value = m.groups()
            series[name + (labels or "")] = float(value)
    return series


def series_with_prefix(series: dict[str, float], prefix: str):
    """(label-or-suffix, value) pairs of every series named prefix{...}."""
    out = []
    for key, value in series.items():
        if key == prefix:
            out.append(("", value))
        elif key.startswith(prefix + "{"):
            out.append((key[len(prefix) + 1:-1], value))
    return out


def bar(fraction: float) -> str:
    n = int(round(fraction * BAR_WIDTH))
    return "#" * n + "." * (BAR_WIDTH - n)


def fmt_eta(x: float) -> str:
    return f"{x:.4f}"


def load_flights(path: str):
    """Groups the flight JSONL into [(header, [event, ...]), ...]."""
    flights = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                raise ValueError(f"{path}:{lineno}: {e}") from e
            if "flight" in rec:
                flights.append((rec["flight"], []))
            else:
                if not flights:
                    raise ValueError(
                        f"{path}:{lineno}: event line before any header")
                flights[-1][1].append(rec)
    return flights


def describe_event(ev: dict) -> str:
    kind = ev.get("kind", "?")
    step = ev.get("step", "?")
    if kind == "message_reject":
        detail = f"sender={ev.get('sender')} reason={ev.get('reason')}"
    elif kind == "message_accept":
        detail = f"sender={ev.get('sender')}"
    elif kind == "ladder_transition":
        detail = f"level {ev.get('from')} -> {ev.get('to')}"
    elif kind == "gate_verdict":
        detail = "EMERGENCY" if ev.get("code") == 1 else "nominal"
    elif kind == "plan_clamp":
        detail = "below a_min" if ev.get("code") == 0 else "above a_max"
    else:
        detail = ""
    value = ev.get("value")
    tail = f" value={value:.6g}" if isinstance(value, (int, float)) else ""
    return f"step {step:>5}  {kind:<17} {detail}{tail}".rstrip()


def section_cells(lines: list[str], csv_path: str, worst: int) -> None:
    with open(csv_path, newline="", encoding="utf-8") as fh:
        rows = list(csv.DictReader(fh))
    if not rows:
        raise ValueError(f"{csv_path}: empty campaign CSV")
    collisions = sum(int(r["collisions"]) for r in rows)
    episodes = sum(int(r["episodes"]) for r in rows)
    lines.append("## Campaign cells")
    lines.append("")
    verdict = ("**HELD**" if collisions == 0 else
               f"**VIOLATED** ({collisions} unsafe-set entries)")
    lines.append(f"Safety invariant eta(kappa_c) >= 0: {verdict} over "
                 f"{episodes} episodes in {len(rows)} cells.")
    lines.append("")
    rows.sort(key=lambda r: float(r["min_eta"]))
    lines.append(f"Worst {min(worst, len(rows))} cells by min eta:")
    lines.append("")
    lines.append("| fault | scenario | min eta | mean eta | collisions "
                 "| emergency steps | rejected |")
    lines.append("|---|---|---|---|---|---|---|")
    for r in rows[:worst]:
        lines.append(
            f"| {r['fault']} | {r['scenario']} "
            f"| {fmt_eta(float(r['min_eta']))} "
            f"| {fmt_eta(float(r['mean_eta']))} | {r['collisions']} "
            f"| {r['emergency_steps']} | {r['messages_rejected']} |")
    lines.append("")


def section_histogram(lines: list[str], series: dict[str, float],
                      name: str, title: str) -> None:
    buckets = []
    for label, value in series_with_prefix(series, name + "_bucket"):
        m = re.match(r'le="([^"]*)"', label)
        if m is None:
            continue
        le = float("inf") if m.group(1) == "+Inf" else float(m.group(1))
        buckets.append((le, value))
    if not buckets:
        return
    buckets.sort(key=lambda b: b[0])
    total = buckets[-1][1]
    lines.append(f"## {title}")
    lines.append("")
    lines.append("```")
    prev = 0.0
    lo = "-inf"
    for le, cum in buckets:
        count = cum - prev
        prev = cum
        hi = "+inf" if le == float("inf") else f"{le:g}"
        frac = count / total if total else 0.0
        lines.append(f"({lo:>6}, {hi:>6}]  {int(count):>6}  {bar(frac)}")
        lo = hi
    lines.append("```")
    lines.append("")


def section_counters(lines: list[str], series: dict[str, float],
                     name: str, label_key: str, title: str) -> None:
    rows = []
    for label, value in series_with_prefix(series, name):
        m = re.match(label_key + r'="([^"]*)"', label)
        if m is not None:
            rows.append((m.group(1), value))
    if not rows:
        return
    total = sum(v for _, v in rows)
    rows.sort(key=lambda r: -r[1])
    lines.append(f"## {title}")
    lines.append("")
    lines.append(f"| {label_key} | count | share |")
    lines.append("|---|---|---|")
    for key, value in rows:
        share = value / total if total else 0.0
        lines.append(f"| {key} | {int(value)} | {share:.1%} |")
    lines.append("")


def section_spans(lines: list[str], spans_path: str) -> None:
    series = read_prom(spans_path)
    rows = []
    for label, ns in series_with_prefix(series, "cvsafe_sweep_ns_total"):
        m = re.match(r'sweep="([^"]*)"', label)
        if m is None:
            continue
        sweep = m.group(1)
        steps = series.get(f'cvsafe_sweep_steps_total{{sweep="{sweep}"}}', 0)
        rows.append((sweep, ns, steps))
    if not rows:
        return
    total_ns = sum(ns for _, ns, _ in rows)
    rows.sort(key=lambda r: -r[1])
    lines.append("## Per-sweep time breakdown (wall clock)")
    lines.append("")
    lines.append("Scheduling-dependent — never byte-compared across runs.")
    lines.append("")
    lines.append("| sweep | total ms | share | sweeps | ns/sweep |")
    lines.append("|---|---|---|---|---|")
    for sweep, ns, steps in rows:
        share = ns / total_ns if total_ns else 0.0
        per = ns / steps if steps else 0.0
        lines.append(f"| {sweep} | {ns / 1e6:.2f} | {share:.1%} "
                     f"| {int(steps)} | {per:.0f} |")
    lines.append("")


def section_flights(lines: list[str], flights_path: str, worst: int,
                    max_events: int) -> None:
    flights = load_flights(flights_path)
    if not flights:
        return
    lines.append("## Triggered flight recordings")
    lines.append("")
    lines.append(f"{len(flights)} episode(s) tripped a dump trigger.")
    lines.append("")
    flights.sort(key=lambda f: f[0].get("eta", 0.0))
    for header, events in flights[:worst]:
        where = " / ".join(
            str(header[k]) for k in ("scenario", "fault") if k in header)
        title = (f"episode {header.get('episode')} "
                 f"(seed {header.get('seed')})")
        if where:
            title += f" under {where}"
        lines.append(f"### {title}")
        lines.append("")
        lines.append(
            f"triggers: {', '.join(header.get('triggers', []))} — "
            f"eta {fmt_eta(header.get('eta', 0.0))}, "
            f"collided {header.get('collided')}, "
            f"{header.get('rejections')} rejection(s), "
            f"{header.get('events')} ring event(s) "
            f"({header.get('overwritten')} overwritten)")
        lines.append("")
        lines.append("```")
        shown = events if len(events) <= max_events else events[-max_events:]
        if len(events) > len(shown):
            lines.append(f"... {len(events) - len(shown)} earlier "
                         "event(s) elided ...")
        for ev in shown:
            lines.append(describe_event(ev))
        lines.append("```")
        lines.append("")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--csv", help="campaign CSV (cvsafe_cli campaign --out)")
    ap.add_argument("--flights",
                    help="flight-recorder JSONL (--flight-recorder)")
    ap.add_argument("--telemetry",
                    help="deterministic telemetry registry (--telemetry)")
    ap.add_argument("--spans",
                    help="sweep-span registry (default: TELEMETRY.spans "
                         "when present)")
    ap.add_argument("--worst", type=int, default=5,
                    help="cells / flight dumps to detail (default 5)")
    ap.add_argument("--max-events", type=int, default=40,
                    help="ring events inlined per dump (default 40)")
    ap.add_argument("--out", help="output markdown path (default stdout)")
    args = ap.parse_args()
    if not (args.csv or args.flights or args.telemetry):
        print("need at least one of --csv / --flights / --telemetry",
              file=sys.stderr)
        return 2

    lines: list[str] = ["# cvsafe campaign report", ""]
    try:
        if args.csv:
            section_cells(lines, args.csv, args.worst)
        if args.telemetry:
            series = read_prom(args.telemetry)
            section_histogram(lines, series, "cvsafe_fleet_eta",
                              "Safety-margin (eta) distribution")
            section_histogram(lines, series, "cvsafe_fleet_episode_steps",
                              "Episode length (pool residency) distribution")
            section_counters(lines, series, "cvsafe_fleet_rejections_total",
                             "reason", "Plausibility-gate rejections")
            section_counters(lines, series,
                             "cvsafe_fleet_ladder_steps_total", "level",
                             "Degradation-ladder occupancy")
            spans = args.spans or args.telemetry + ".spans"
            if os.path.exists(spans):
                section_spans(lines, spans)
        elif args.spans:
            section_spans(lines, args.spans)
        if args.flights:
            section_flights(lines, args.flights, args.worst,
                            args.max_events)
    except (OSError, ValueError, KeyError) as e:
        print(f"campaign_report: {e}", file=sys.stderr)
        return 1

    text = "\n".join(lines).rstrip() + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
