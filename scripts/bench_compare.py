#!/usr/bin/env python3
"""Compare cvsafe_bench JSON files and gate perf regressions.

Two-file mode diffs a committed baseline against a fresh run and fails on
any shared benchmark that regressed by more than --max-regression:

    bench_compare.py BENCH_baseline.json BENCH_micro.json

Speedup/allocation gates work in both modes. With two files the left name
of a --require-speedup pair is looked up in the baseline and the right
name in the new file; with a single file both names come from it, which
makes the gate machine-independent (same binary, same host) and therefore
usable in CI where absolute ns/op are not comparable to the committed
baseline's hardware:

    bench_compare.py BENCH_micro.json \
        --require-speedup mlp_forward_alloc:mlp_forward_workspace:1.5 \
        --require-speedup boundary_grid_serial:boundary_grid_incremental:3 \
        --require-zero-alloc mlp_forward_workspace

--require-max-ratio is the inverse gate: it bounds how much slower NUM may
be than DEN (fail if ns/op(NUM) / ns/op(DEN) > LIMIT). Used to pin the
sound interval forward pass to a sane multiple of the concrete forward
pass — an accidental per-call allocation or complexity blowup in the
interval kernels trips it long before wall-clock times look suspicious:

    bench_compare.py BENCH_micro.json \
        --require-max-ratio nn_interval_forward:mlp_forward_workspace:30

--require-parallel-speedup is --require-speedup that consults the
recording host's `config.hardware_threads` (written by cvsafe_bench) and
skips itself — with a note, never a failure — on single-thread runners,
where a parallel implementation cannot be expected to beat the serial one:

    bench_compare.py BENCH_micro.json \
        --require-parallel-speedup boundary_grid_serial:boundary_grid_parallel:1.1

Exit status is non-zero if any gate or regression check fails.
"""

from __future__ import annotations

import argparse
import json
import sys


def load(path: str) -> tuple[dict[str, dict], dict]:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "cvsafe-bench-v1":
        sys.exit(f"{path}: unsupported schema {doc.get('schema')!r}")
    return {b["name"]: b for b in doc["benchmarks"]}, doc.get("config", {})


def lookup(table: dict[str, dict], name: str, path: str) -> dict:
    if name not in table:
        sys.exit(f"benchmark {name!r} not found in {path}")
    return table[name]


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="baseline JSON (or the only file)")
    ap.add_argument("new", nargs="?", help="new JSON to compare against")
    ap.add_argument(
        "--max-regression",
        type=float,
        default=0.10,
        help="fail if a shared benchmark slows down by more than this "
        "fraction (default 0.10 = 10%%)",
    )
    ap.add_argument(
        "--require-speedup",
        action="append",
        default=[],
        metavar="OLD:NEW:FACTOR",
        help="fail unless ns/op(OLD) / ns/op(NEW) >= FACTOR",
    )
    ap.add_argument(
        "--require-max-ratio",
        action="append",
        default=[],
        metavar="NUM:DEN:LIMIT",
        help="fail if ns/op(NUM) / ns/op(DEN) > LIMIT (both from the new "
        "file; bounds an acceptable overhead multiple)",
    )
    ap.add_argument(
        "--require-zero-alloc",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless NAME has allocs_per_op == 0 in the new file",
    )
    ap.add_argument(
        "--require-parallel-speedup",
        action="append",
        default=[],
        metavar="OLD:NEW:FACTOR",
        help="like --require-speedup, but a parallel-vs-serial gate: "
        "skipped (with a note, never a failure) when the recording host "
        "had fewer than 2 hardware threads, where a parallel "
        "implementation cannot be expected to win",
    )
    args = ap.parse_args()

    old, old_config = load(args.baseline)
    if args.new:
        new, new_config = load(args.new)
    else:
        new, new_config = old, old_config
    new_path = args.new if args.new else args.baseline
    failed = False

    if args.new:
        shared = [n for n in old if n in new]
        if not shared:
            sys.exit("no shared benchmark names between the two files")
        print(f"{'benchmark':<32} {'old ns/op':>12} {'new ns/op':>12} {'delta':>8}")
        for name in shared:
            o, n = old[name]["ns_per_op"], new[name]["ns_per_op"]
            delta = (n - o) / o if o > 0 else 0.0
            flag = ""
            if delta > args.max_regression:
                flag = "  REGRESSION"
                failed = True
            print(f"{name:<32} {o:>12.1f} {n:>12.1f} {delta:>+7.1%}{flag}")
        only_new = [n for n in new if n not in old]
        if only_new:
            print(f"(new-only benchmarks, not diffed: {', '.join(only_new)})")

    for spec in args.require_speedup:
        try:
            old_name, new_name, factor_s = spec.split(":")
            factor = float(factor_s)
        except ValueError:
            sys.exit(f"bad --require-speedup spec {spec!r}, want OLD:NEW:FACTOR")
        o = lookup(old, old_name, args.baseline)["ns_per_op"]
        n = lookup(new, new_name, new_path)["ns_per_op"]
        ratio = o / n if n > 0 else float("inf")
        ok = ratio >= factor
        print(
            f"speedup {old_name} -> {new_name}: {ratio:.2f}x "
            f"(required {factor:.2f}x) {'ok' if ok else 'FAIL'}"
        )
        failed |= not ok

    for spec in args.require_max_ratio:
        try:
            num_name, den_name, limit_s = spec.split(":")
            limit = float(limit_s)
        except ValueError:
            sys.exit(f"bad --require-max-ratio spec {spec!r}, want NUM:DEN:LIMIT")
        num = lookup(new, num_name, new_path)["ns_per_op"]
        den = lookup(new, den_name, new_path)["ns_per_op"]
        ratio = num / den if den > 0 else float("inf")
        ok = ratio <= limit
        print(
            f"max-ratio {num_name} / {den_name}: {ratio:.2f}x "
            f"(limit {limit:.2f}x) {'ok' if ok else 'FAIL'}"
        )
        failed |= not ok

    hardware_threads = new_config.get("hardware_threads", 0)
    for spec in args.require_parallel_speedup:
        try:
            old_name, new_name, factor_s = spec.split(":")
            factor = float(factor_s)
        except ValueError:
            sys.exit(
                f"bad --require-parallel-speedup spec {spec!r}, "
                "want OLD:NEW:FACTOR"
            )
        if hardware_threads < 2:
            print(
                f"parallel-speedup {old_name} -> {new_name}: skipped "
                f"(recording host reported {hardware_threads} hardware "
                "thread(s); parallel cannot be expected to beat serial)"
            )
            continue
        o = lookup(old, old_name, args.baseline)["ns_per_op"]
        n = lookup(new, new_name, new_path)["ns_per_op"]
        ratio = o / n if n > 0 else float("inf")
        ok = ratio >= factor
        print(
            f"parallel-speedup {old_name} -> {new_name}: {ratio:.2f}x "
            f"(required {factor:.2f}x on {hardware_threads} hardware "
            f"threads) {'ok' if ok else 'FAIL'}"
        )
        failed |= not ok

    for name in args.require_zero_alloc:
        allocs = lookup(new, name, new_path)["allocs_per_op"]
        ok = allocs == 0
        print(f"zero-alloc {name}: {allocs} allocs/op {'ok' if ok else 'FAIL'}")
        failed |= not ok

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
